package service

import (
	"fmt"
	"math"
	"runtime"

	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

// graphSeedSalt decorrelates graph generation from the job's own seed
// consumers (priority permutations, edge weights), mirroring the salts the
// bench harness uses.
const graphSeedSalt = 0xbe9cbe9cbe9cbe9c

// buildGraph generates the graph a spec describes. The spec itself (and
// its validation and cache key) is a wire type in internal/api; the
// generator binding lives here because only the executing node ever
// builds — the gateway routes on GraphSpec.Key without touching a
// generator. Generation always uses every available core (as the bench
// harness does): the builder's parallelism is an input-preparation
// concern, independent of any job's worker count.
func buildGraph(s GraphSpec) (*graph.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sp := s.Normalized()
	r := rng.New(sp.Seed ^ graphSeedSalt)
	workers := runtime.GOMAXPROCS(0)
	switch sp.Model {
	case ModelGNP:
		p := 0.0
		if sp.N > 1 {
			p = float64(2*sp.Edges) / (float64(sp.N) * float64(sp.N-1))
		}
		return graph.ParallelGNP(sp.N, p, workers, r)
	case ModelPowerLaw:
		avgDeg := 2 * float64(sp.Edges) / float64(sp.N)
		return graph.PowerLaw(sp.N, avgDeg, sp.Exponent, workers, r)
	case ModelGrid:
		rows := int(math.Sqrt(float64(sp.N)))
		for rows > 1 && sp.N%rows != 0 {
			rows--
		}
		if rows < 1 {
			rows = 1
		}
		return graph.Grid(rows, sp.N/rows), nil
	default:
		return nil, fmt.Errorf("unknown graph model %q", sp.Model)
	}
}
