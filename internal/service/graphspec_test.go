package service

import (
	"strings"
	"testing"
)

// Validate and Key canonicalization tests live with the GraphSpec type in
// internal/api; this file covers the service-side builder only.

func TestBuildGraph(t *testing.T) {
	cases := []GraphSpec{
		{Model: ModelGNP, N: 500, Edges: 2000, Seed: 3},
		{Model: ModelPowerLaw, N: 500, Edges: 2000, Seed: 3},
		{Model: ModelGrid, N: 400}, // 20x20
	}
	for _, s := range cases {
		g, err := buildGraph(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		if g.NumVertices() != s.N {
			t.Fatalf("%s: built %d vertices, want %d", s.Key(), g.NumVertices(), s.N)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: built an edgeless graph", s.Key())
		}
	}
	// Same spec, same graph (deterministic generation).
	a, err := buildGraph(GraphSpec{N: 300, Edges: 900, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildGraph(GraphSpec{N: 300, Edges: 900, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same spec built %d and %d edges", a.NumEdges(), b.NumEdges())
	}
	if _, err := buildGraph(GraphSpec{Model: "hypercube", N: 8}); err == nil || !strings.Contains(err.Error(), "unknown graph model") {
		t.Fatalf("bad model build error: %v", err)
	}
}
