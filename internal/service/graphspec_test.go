package service

import (
	"strings"
	"testing"
)

func TestGraphSpecValidate(t *testing.T) {
	good := []GraphSpec{
		{N: 10},
		{Model: ModelGNP, N: 100, Edges: 200, Seed: 5},
		{Model: ModelPowerLaw, N: 100, Edges: 300, Exponent: 2.5},
		{Model: ModelPowerLaw, N: 100, Edges: 300}, // exponent defaults
		{Model: ModelGrid, N: 100},
		{Model: ModelGrid, N: 7}, // prime: falls back to a path
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("%+v rejected: %v", s, err)
		}
	}
	bad := []GraphSpec{
		{},
		{N: -1},
		{Model: "hypercube", N: 10},
		{Model: ModelGNP, N: 10, Edges: -1},
		{Model: ModelGNP, N: 3, Edges: 4}, // beyond simple-graph max
		{Model: ModelPowerLaw, N: 10, Edges: 20, Exponent: 1},
		{N: MaxGraphVertices + 1},
		{N: 1000, Edges: MaxGraphEdges + 1},
		{Model: ModelPowerLaw, N: 1000, Edges: MaxGraphEdges + 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("%+v accepted", s)
		}
	}
}

// TestGraphSpecKeyCanonicalization: specs that build the same graph render
// the same key; specs that differ in any graph-determining field do not.
func TestGraphSpecKeyCanonicalization(t *testing.T) {
	if (GraphSpec{N: 10, Edges: 20, Seed: 1}).Key() != (GraphSpec{Model: ModelGNP, N: 10, Edges: 20, Seed: 1}).Key() {
		t.Fatal("empty model and explicit gnp render different keys")
	}
	if (GraphSpec{Model: ModelPowerLaw, N: 10, Edges: 20}).Key() != (GraphSpec{Model: ModelPowerLaw, N: 10, Edges: 20, Exponent: 2.5}).Key() {
		t.Fatal("default exponent splits the powerlaw key")
	}
	// Grid ignores seed, edges and exponent by construction.
	if (GraphSpec{Model: ModelGrid, N: 100, Seed: 1, Edges: 5}).Key() != (GraphSpec{Model: ModelGrid, N: 100, Seed: 2}).Key() {
		t.Fatal("grid key depends on ignored fields")
	}
	distinct := []GraphSpec{
		{N: 10, Edges: 20, Seed: 1},
		{N: 10, Edges: 20, Seed: 2},
		{N: 10, Edges: 21, Seed: 1},
		{N: 11, Edges: 20, Seed: 1},
		{Model: ModelPowerLaw, N: 10, Edges: 20, Seed: 1},
		{Model: ModelPowerLaw, N: 10, Edges: 20, Seed: 1, Exponent: 3},
		{Model: ModelGrid, N: 10},
	}
	seen := map[string]GraphSpec{}
	for _, s := range distinct {
		key := s.Key()
		if prev, dup := seen[key]; dup {
			t.Fatalf("%+v and %+v share key %q", prev, s, key)
		}
		seen[key] = s
	}
}

func TestGraphSpecBuild(t *testing.T) {
	cases := []GraphSpec{
		{Model: ModelGNP, N: 500, Edges: 2000, Seed: 3},
		{Model: ModelPowerLaw, N: 500, Edges: 2000, Seed: 3},
		{Model: ModelGrid, N: 400}, // 20x20
	}
	for _, s := range cases {
		g, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		if g.NumVertices() != s.N {
			t.Fatalf("%s: built %d vertices, want %d", s.Key(), g.NumVertices(), s.N)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: built an edgeless graph", s.Key())
		}
	}
	// Same spec, same graph (deterministic generation).
	a, err := (GraphSpec{N: 300, Edges: 900, Seed: 9}).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (GraphSpec{N: 300, Edges: 900, Seed: 9}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same spec built %d and %d edges", a.NumEdges(), b.NumEdges())
	}
	if _, err := (GraphSpec{Model: "hypercube", N: 8}).Build(); err == nil || !strings.Contains(err.Error(), "unknown graph model") {
		t.Fatalf("bad model build error: %v", err)
	}
}
