package service

import (
	"net/http"

	"relaxsched/internal/api"
	"relaxsched/internal/workload"
)

// NewHandler returns the service's HTTP API: the generic versioned
// handler (api.NewHandler) serving this manager through the Local
// dispatcher adapter. Routes, status codes and the error envelope are
// documented on api.NewHandler; the same handler fronts a gateway, so a
// client cannot tell one node from a cluster.
func NewHandler(m *Manager) http.Handler {
	return api.NewHandler(Local{M: m})
}

// Workloads lists the registered workloads in the registry's deterministic
// (sorted) order.
func Workloads() []WorkloadInfo {
	all := workload.All()
	infos := make([]WorkloadInfo, 0, len(all))
	for _, d := range all {
		infos = append(infos, WorkloadInfo{
			Name:       d.Name,
			Kind:       d.Kind.String(),
			Brief:      d.Brief,
			Input:      d.Input,
			WastedWork: d.WastedWork,
		})
	}
	return infos
}
