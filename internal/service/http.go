package service

import (
	"net/http"

	"relaxsched/internal/api"
	"relaxsched/internal/metricsexport"
	"relaxsched/internal/workload"
)

// NewHandler returns the service's HTTP API: the generic versioned
// handler (api.NewHandler) serving this manager through the Local
// dispatcher adapter, plus the node's Prometheus text exposition at
// GET /v1/metrics/prom. Routes, status codes and the error envelope are
// documented on api.NewHandler; the same handler fronts a gateway, so a
// client cannot tell one node from a cluster.
//
// The prom route sits in this wrapper rather than api.NewHandler because
// the renderer (internal/metricsexport) imports internal/api; the generic
// handler cannot import it back.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		snap := m.Metrics()
		w.Header().Set("Content-Type", metricsexport.ContentType)
		w.Write(metricsexport.Render(&snap))
	})
	mux.Handle("/", api.NewHandler(Local{M: m}))
	return api.WithTrace(mux)
}

// Workloads lists the registered workloads in the registry's deterministic
// (sorted) order.
func Workloads() []WorkloadInfo {
	all := workload.All()
	infos := make([]WorkloadInfo, 0, len(all))
	for _, d := range all {
		infos = append(infos, WorkloadInfo{
			Name:       d.Name,
			Kind:       d.Kind.String(),
			Brief:      d.Brief,
			Input:      d.Input,
			WastedWork: d.WastedWork,
		})
	}
	return infos
}
