package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"relaxsched/internal/workload"
)

// NewHandler returns the service's HTTP API:
//
//	POST /jobs         submit a job (JobSpec JSON) -> 202 + JobStatus
//	GET  /jobs/{id}    poll a job's status/result  -> 200 + JobStatus
//	GET  /workloads    list the registry           -> 200 + []WorkloadInfo
//	GET  /metrics      service counters snapshot   -> 200 + Metrics
//	GET  /healthz      liveness ("ok"/"draining")
//
// Admission-control rejections map onto HTTP status codes: a full queue is
// 429 Too Many Requests, a draining manager is 503 Service Unavailable, and
// an invalid spec is 400. Errors are returned as {"error": "..."} JSON.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		spec := defaultJobSpec()
		// A valid JobSpec is a few hundred bytes; bound the body so one
		// client cannot grow the daemon's heap with an endless token.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
			return
		}
		st, err := m.Submit(spec)
		if err != nil {
			writeError(w, submitStatusCode(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid job id %q", r.PathValue("id")))
			return
		}
		st, err := m.Status(id)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownJob) {
				code = http.StatusNotFound
			}
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Workloads())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		draining := m.closed
		m.mu.Unlock()
		if draining {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// submitStatusCode maps Submit errors onto HTTP statuses.
func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// WorkloadInfo is one row of the workload-listing endpoint, taken straight
// from the registry descriptor.
type WorkloadInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Brief      string `json:"brief"`
	Input      string `json:"input"`
	WastedWork string `json:"wasted_work"`
}

// Workloads lists the registered workloads in the registry's deterministic
// (sorted) order.
func Workloads() []WorkloadInfo {
	all := workload.All()
	infos := make([]WorkloadInfo, 0, len(all))
	for _, d := range all {
		infos = append(infos, WorkloadInfo{
			Name:       d.Name,
			Kind:       d.Kind.String(),
			Brief:      d.Brief,
			Input:      d.Input,
			WastedWork: d.WastedWork,
		})
	}
	return infos
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
