package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/trace"
)

// newTestServer starts a manager plus its HTTP handler, wired for cleanup.
func newTestServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m, srv
}

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// TestHTTPSubmitPollRoundTrip: the curl-equivalent round trip — submit a
// job, poll to done, check the verified result, then repeat the identical
// submit and observe the graph-cache hit in the job's own result.
func TestHTTPSubmitPollRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2})

	spec := testSpec("mis", "concurrent")
	resp, payload := postJob(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %s: %s", resp.Status, payload)
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	first := pollHTTP(t, srv.URL, st.ID)
	if first.State != StateDone || !first.Result.Verified {
		t.Fatalf("first job: %+v", first)
	}
	if first.Result.GraphCacheHit {
		t.Fatal("first job claims a cache hit on a cold cache")
	}

	resp, payload = postJob(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit returned %s: %s", resp.Status, payload)
	}
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	second := pollHTTP(t, srv.URL, st.ID)
	if second.State != StateDone {
		t.Fatalf("second job: %+v", second)
	}
	if !second.Result.GraphCacheHit {
		t.Fatal("identical re-submit missed the graph cache")
	}

	m, err := FetchMetrics(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits < 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache stats after repeat submit: %+v", m.Cache)
	}
	if m.Jobs.Done != 2 {
		t.Fatalf("done count = %d", m.Jobs.Done)
	}
}

func pollHTTP(t *testing.T, url string, id int64) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", url, id))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d did not finish over HTTP", id)
	return JobStatus{}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Options{startPaused: true, Workers: 1})

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"workload":"mis","frobnicate":1}`},
		{"unknown workload", `{"workload":"galactic","graph":{"n":10}}`},
		{"unknown mode", `{"workload":"mis","mode":"quantum","graph":{"n":10}}`},
		{"missing graph", `{"workload":"mis"}`},
		{"bad model", `{"workload":"mis","graph":{"n":10,"model":"hypercube"}}`},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %s, body %s", c.name, resp.Status, payload)
		}
		var msg map[string]string
		if err := json.Unmarshal(payload, &msg); err != nil || msg["message"] == "" {
			t.Fatalf("%s: error body %q", c.name, payload)
		}
	}

	// Unknown job id -> 404; non-numeric id -> 400; wrong method -> 405.
	statusOf := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := statusOf("/v1/jobs/999"); got != http.StatusNotFound {
		t.Fatalf("unknown id: %d", got)
	}
	if got := statusOf("/v1/jobs/abc"); got != http.StatusBadRequest {
		t.Fatalf("bad id: %d", got)
	}
	if got := statusOf("/v1/jobs"); got != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: %d", got)
	}
}

// TestHTTPQueueFull429: a paused manager with a tiny queue returns 429 once
// the bound is hit.
func TestHTTPQueueFull429(t *testing.T) {
	_, srv := newTestServer(t, Options{startPaused: true, Workers: 1, QueueDepth: 2})
	spec := testSpec("mis", "sequential")
	for i := 0; i < 2; i++ {
		resp, payload := postJob(t, srv.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s %s", i, resp.Status, payload)
		}
	}
	resp, payload := postJob(t, srv.URL, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %s %s", resp.Status, payload)
	}
}

// TestHTTPDraining503: after Close begins, submissions get 503 while
// healthz stays 200 but reports the drain explicitly — a draining node
// is alive and finishing work, not dead, and probes must be able to tell
// the two apart without decoding a 503.
func TestHTTPDraining503(t *testing.T) {
	m, srv := newTestServer(t, Options{Workers: 1})
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, payload := postJob(t, srv.URL, testSpec("mis", "sequential"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %s %s", resp.Status, payload)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %s, want 200", hresp.Status)
	}
	var health map[string]string
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != api.StatusDraining {
		t.Fatalf("healthz status while draining = %q, want %q", health["status"], api.StatusDraining)
	}
}

// TestHTTPJobTrace: a finished job's lifecycle is reconstructable from
// GET /v1/jobs/{id}/trace — the caller-supplied X-Relax-Trace-Id is kept
// for the job's whole life and echoed back, the span names walk the
// documented lifecycle in order, and offsets are monotone.
func TestHTTPJobTrace(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})

	body, err := json.Marshal(testSpec("mis", "sequential"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "trace-http-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got := resp.Header.Get(trace.Header); got != "trace-http-test" {
		t.Fatalf("submit echoed trace id %q, want trace-http-test", got)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if final := pollHTTP(t, srv.URL, st.ID); final.State != StateDone {
		t.Fatalf("job ended %s: %+v", final.State, final)
	}

	tresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/trace", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %s", tresp.Status)
	}
	var tr JobTrace
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != st.ID {
		t.Fatalf("trace id = %d, want %d", tr.ID, st.ID)
	}
	if tr.TraceID != "trace-http-test" {
		t.Fatalf("trace carries trace_id %q, want trace-http-test", tr.TraceID)
	}
	want := []string{"accepted", "queued", "dispatched", "graph-build", "executing", "done"}
	i := 0
	var prev int64
	for _, s := range tr.Spans {
		if s.StartNanos < prev {
			t.Fatalf("span %q starts at %d, before previous start %d", s.Name, s.StartNanos, prev)
		}
		prev = s.StartNanos
		if i < len(want) && s.Name == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("trace spans %v missing lifecycle subsequence %v (matched %d)", tr.Spans, want, i)
	}

	// Unknown jobs answer the usual envelope, with the request's trace id
	// stamped in.
	ureq, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/999999/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	ureq.Header.Set(trace.Header, "trace-unknown")
	uresp, err := http.DefaultClient.Do(ureq)
	if err != nil {
		t.Fatal(err)
	}
	defer uresp.Body.Close()
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace fetch: %s", uresp.Status)
	}
	var envelope api.Error
	if err := json.NewDecoder(uresp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != api.CodeUnknownJob {
		t.Fatalf("unknown trace code = %q, want %q", envelope.Code, api.CodeUnknownJob)
	}
	if envelope.TraceID != "trace-unknown" {
		t.Fatalf("error envelope trace_id = %q, want trace-unknown", envelope.TraceID)
	}
}

// TestHTTPWorkloadListing: the listing endpoint serves the registry in
// deterministic sorted order with full documentation fields.
func TestHTTPWorkloadListing(t *testing.T) {
	_, srv := newTestServer(t, Options{startPaused: true, Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []WorkloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	want := []string{"coloring", "kcore", "matching", "mis", "pagerank", "sssp"}
	if len(infos) != len(want) {
		t.Fatalf("listing holds %d workloads, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Fatalf("listing[%d] = %q, want %q", i, info.Name, want[i])
		}
		if info.Kind == "" || info.Brief == "" || info.Input == "" || info.WastedWork == "" {
			t.Fatalf("listing[%d] incomplete: %+v", i, info)
		}
	}
}

// TestHTTPHealthz: a healthy server reports ok.
func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{startPaused: true, Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}
