package service

import (
	"fmt"
	"math"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/workload"
)

// defaultJobSpec returns the documented spec template; see
// api.DefaultJobSpec.
func defaultJobSpec() JobSpec {
	return api.DefaultJobSpec()
}

// validateSpec checks everything that can be rejected at admission time,
// reusing the same validators the CLIs use (workload.ValidateFlags,
// workload.ParseMode, registry lookup) so the service and the CLIs agree on
// what a well-formed request is. The wire type's own GraphSpec.Validate
// covers the registry-independent half; binding-time errors that need the
// graph (e.g. an sssp source beyond the vertex count) surface when the job
// runs.
func validateSpec(s JobSpec) error {
	if s.Workload == "" {
		return fmt.Errorf("workload is required")
	}
	if _, err := workload.Lookup(s.Workload); err != nil {
		return err
	}
	if _, err := workload.ParseMode(s.Mode); err != nil {
		return err
	}
	if err := workload.ValidateFlags(s.K, s.Threads, s.Batch); err != nil {
		return err
	}
	if err := s.Graph.Validate(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if s.Tolerance < 0 || math.IsInf(s.Tolerance, 1) || math.IsNaN(s.Tolerance) {
		return fmt.Errorf("invalid tolerance %v: must be positive (0 selects the default)", s.Tolerance)
	}
	if s.Damping != 0 && !(s.Damping > 0 && s.Damping < 1) {
		return fmt.Errorf("invalid damping %v: must lie in (0, 1) (0 selects the default)", s.Damping)
	}
	if s.Source < -1 {
		return fmt.Errorf("invalid source %d: must be -1 (auto) or a vertex id", s.Source)
	}
	return nil
}

// runConfig maps the spec onto the registry's mode-dispatch config.
func runConfig(s JobSpec) (workload.RunConfig, error) {
	mode, err := workload.ParseMode(s.Mode)
	if err != nil {
		return workload.RunConfig{}, err
	}
	return workload.RunConfig{
		Mode:    mode,
		K:       s.K,
		Threads: s.Threads,
		Batch:   s.Batch,
	}, nil
}

// runParams maps the spec onto the registry's workload parameters.
func runParams(s JobSpec) workload.Params {
	return workload.Params{
		Seed:      s.Seed,
		Delta:     s.Delta,
		Damping:   s.Damping,
		Tolerance: s.Tolerance,
		Source:    s.Source,
	}
}

// job is the manager's internal record.
type job struct {
	id        int64
	spec      JobSpec
	state     JobState
	err       error
	result    *JobResult
	queueRank int
	queueTime time.Duration
	submitted time.Time
	// recovered marks a job replayed from the write-ahead log at boot.
	recovered bool
	// traceID is the request-correlation ID minted (or forwarded) at
	// admission; it rides on the job's lifecycle trace and log lines.
	traceID string
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		QueueRank:   j.queueRank,
		QueueNanos:  j.queueTime.Nanoseconds(),
		SubmittedAt: j.submitted,
		Recovered:   j.recovered,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}
