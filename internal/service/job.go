package service

import (
	"fmt"
	"math"
	"time"

	"relaxsched/internal/workload"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// StateQueued means the job sits in the manager's scheduler-backed
	// pending queue.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and (if requested) verified.
	StateDone JobState = "done"
	// StateFailed means execution or verification returned an error.
	StateFailed JobState = "failed"
	// StateCanceled means the job was aborted by a forced shutdown before
	// it could finish.
	StateCanceled JobState = "canceled"
)

// JobSpec is a job submission: which workload to run, in which execution
// mode, on which (generated) graph, at which queue priority. The field set
// deliberately mirrors cmd/relaxrun's flags — a job is one relaxrun
// invocation made resident.
type JobSpec struct {
	// Workload is a registry name (mis, coloring, matching, sssp, kcore,
	// pagerank).
	Workload string `json:"workload"`
	// Mode is the execution mode: sequential, relaxed, concurrent, exact.
	Mode string `json:"mode"`
	// Graph describes the input graph; it is also the graph-cache key.
	Graph GraphSpec `json:"graph"`
	// Priority is the job's queue priority; lower values are scheduled
	// sooner, exactly like a task priority in internal/sched.
	Priority uint32 `json:"priority"`
	// K is the relaxation factor for mode "relaxed" (default 16).
	K int `json:"k,omitempty"`
	// Threads is the worker count for modes "concurrent"/"exact" (default
	// 2).
	Threads int `json:"threads,omitempty"`
	// Batch is the executor batch size (0 = executor default).
	Batch int `json:"batch,omitempty"`
	// Seed drives the job's derived inputs (permutations, weights) and
	// relaxed schedulers.
	Seed uint64 `json:"seed,omitempty"`
	// Delta is the sssp Δ-stepping bucket width (0 or 1 = exact distances).
	Delta uint32 `json:"delta,omitempty"`
	// Damping is the pagerank damping factor (0 selects 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Tolerance is the pagerank target L1 error (0 selects 1e-9).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Source is the sssp source vertex (-1 = first non-isolated vertex).
	Source int `json:"source"`
	// Verify asks the worker to check the output against the workload's
	// exactness oracle after execution (the default for submissions).
	Verify bool `json:"verify"`
}

// defaultJobSpec returns the spec template HTTP submissions are decoded
// over, making the documented defaults explicit.
func defaultJobSpec() JobSpec {
	return JobSpec{
		Mode:    workload.ModeSequential.String(),
		K:       16,
		Threads: 2,
		Source:  -1,
		Verify:  true,
	}
}

// Validate checks everything that can be rejected at admission time,
// reusing the same validators the CLIs use (workload.ValidateFlags,
// workload.ParseMode, registry lookup) so the service and the CLIs agree on
// what a well-formed request is. Binding-time errors that need the graph
// (e.g. an sssp source beyond the vertex count) surface when the job runs.
func (s *JobSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("workload is required")
	}
	if _, err := workload.Lookup(s.Workload); err != nil {
		return err
	}
	if _, err := workload.ParseMode(s.Mode); err != nil {
		return err
	}
	if err := workload.ValidateFlags(s.K, s.Threads, s.Batch); err != nil {
		return err
	}
	if err := s.Graph.Validate(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if s.Tolerance < 0 || math.IsInf(s.Tolerance, 1) || math.IsNaN(s.Tolerance) {
		return fmt.Errorf("invalid tolerance %v: must be positive (0 selects the default)", s.Tolerance)
	}
	if s.Damping != 0 && !(s.Damping > 0 && s.Damping < 1) {
		return fmt.Errorf("invalid damping %v: must lie in (0, 1) (0 selects the default)", s.Damping)
	}
	if s.Source < -1 {
		return fmt.Errorf("invalid source %d: must be -1 (auto) or a vertex id", s.Source)
	}
	return nil
}

// runConfig maps the spec onto the registry's mode-dispatch config.
func (s *JobSpec) runConfig() (workload.RunConfig, error) {
	mode, err := workload.ParseMode(s.Mode)
	if err != nil {
		return workload.RunConfig{}, err
	}
	return workload.RunConfig{
		Mode:    mode,
		K:       s.K,
		Threads: s.Threads,
		Batch:   s.Batch,
	}, nil
}

// params maps the spec onto the registry's workload parameters.
func (s *JobSpec) params() workload.Params {
	return workload.Params{
		Seed:      s.Seed,
		Delta:     s.Delta,
		Damping:   s.Damping,
		Tolerance: s.Tolerance,
		Source:    s.Source,
	}
}

// JobResult is the outcome of a finished job.
type JobResult struct {
	// Summary is the workload's one-line output account ("MIS size: 123").
	Summary string `json:"summary"`
	// Verified reports whether the output passed the workload's exactness
	// oracle (false when the submission asked not to verify).
	Verified bool `json:"verified"`
	// Pops, StalePops and Wasted are the execution's work accounting (see
	// workload.Cost); WastedWorkLabel names what Wasted counts.
	Pops            int64  `json:"pops"`
	StalePops       int64  `json:"stale_pops"`
	Wasted          int64  `json:"wasted"`
	WastedWorkLabel string `json:"wasted_work_label"`
	// ExecNanos is the wall-clock execution time (excluding queueing and
	// graph build/cache lookup).
	ExecNanos int64 `json:"exec_ns"`
	// GraphCacheHit reports whether the input graph came from the cache.
	GraphCacheHit bool `json:"graph_cache_hit"`
}

// JobStatus is the externally visible state of a job, returned by the
// status endpoint.
type JobStatus struct {
	ID    int64    `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set for done jobs.
	Result *JobResult `json:"result,omitempty"`
	// QueueRank is the rank (1 = true minimum) this job had among all
	// pending jobs when the scheduler dispensed it — its observed
	// scheduling rank error is QueueRank-1. Zero while still queued.
	QueueRank int `json:"queue_rank,omitempty"`
	// QueueNanos is the time the job spent queued before dispatch.
	QueueNanos int64 `json:"queue_ns,omitempty"`
	// SubmittedAt is the submission wall-clock time.
	SubmittedAt time.Time `json:"submitted_at"`
}

// job is the manager's internal record.
type job struct {
	id        int64
	spec      JobSpec
	state     JobState
	err       error
	result    *JobResult
	queueRank int
	queueTime time.Duration
	submitted time.Time
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		QueueRank:   j.queueRank,
		QueueNanos:  j.queueTime.Nanoseconds(),
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}
