package service

import (
	"fmt"

	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
)

// Job-queue scheduler families. The pending-job queue *is* an
// internal/sched scheduler — the same implementations the paper studies at
// task granularity, applied at job granularity. The manager serializes
// queue operations under its own mutex, so the sequential-model
// implementations apply directly.
const (
	// JobSchedExact is the exact binary heap: jobs dispatch in strict
	// priority order (rank error always 0).
	JobSchedExact = "exact"
	// JobSchedMultiQueue is the MultiQueue model with k sub-queues: random
	// two-choice dispatch with exponential rank-error tails.
	JobSchedMultiQueue = "multiqueue"
	// JobSchedKBounded is the deterministic k-bounded queue: every dispatch
	// has rank at most k.
	JobSchedKBounded = "kbounded"
	// JobSchedFIFO is a priority-blind baseline: dispatch in submission
	// order, unbounded rank error — what a conventional job service does,
	// and the yardstick the relaxed schedulers are judged against.
	JobSchedFIFO = "fifo"
	// JobSchedAuto is the adaptive mode: a k-bounded queue whose k the
	// manager's feedback controller (internal/control) retunes online —
	// widening under queue pressure, tightening toward exact when the
	// observed rank error breaches the operator's SLO. The controller also
	// drives the executor batch size through core.TunableOptions.
	JobSchedAuto = "auto"
)

// JobSchedNames lists the selectable job-queue schedulers.
func JobSchedNames() []string {
	return []string{JobSchedExact, JobSchedMultiQueue, JobSchedKBounded, JobSchedFIFO, JobSchedAuto}
}

// NewJobScheduler constructs the named job-queue scheduler. k is the
// relaxation factor for multiqueue (sub-queues) and kbounded (dispatch
// bound); exact and fifo ignore it. capacity sizes the underlying
// structures (the admission bound fits naturally).
func NewJobScheduler(name string, k, capacity int, seed uint64) (sched.Scheduler, error) {
	if k < 1 {
		return nil, fmt.Errorf("invalid job-scheduler relaxation %d: must be at least 1", k)
	}
	if capacity < 1 {
		capacity = 1
	}
	switch name {
	case JobSchedExact:
		return exactheap.New(capacity), nil
	case JobSchedMultiQueue:
		return multiqueue.NewSequential(k, capacity, rng.New(seed)), nil
	case JobSchedKBounded:
		return kbounded.New(k, capacity), nil
	case JobSchedAuto:
		// The adaptive mode starts as a k-bounded queue at the given k; the
		// manager's control loop retunes it through kbounded.Queue.SetK.
		return kbounded.New(k, capacity), nil
	case JobSchedFIFO:
		return newFIFOQueue(capacity), nil
	default:
		return nil, fmt.Errorf("unknown job scheduler %q (known: %v)", name, JobSchedNames())
	}
}

// fifoQueue is the priority-blind baseline: dispatch order is submission
// order. Its rank error against the priority order is unbounded, which is
// exactly the point of measuring it.
type fifoQueue struct {
	items []sched.Item
	head  int
}

var _ sched.Scheduler = (*fifoQueue)(nil)

func newFIFOQueue(capacity int) *fifoQueue {
	return &fifoQueue{items: make([]sched.Item, 0, capacity)}
}

func (q *fifoQueue) Insert(it sched.Item) { q.items = append(q.items, it) }

// fifoCompactThreshold is the dead-prefix length beyond which ApproxGetMin
// compacts the backing array. Without compaction a queue that never fully
// drains — a service pinned at its admission bound is exactly that — grows
// its dead prefix by one item per job forever.
const fifoCompactThreshold = 64

func (q *fifoQueue) ApproxGetMin() (sched.Item, bool) {
	if q.head >= len(q.items) {
		return sched.Item{}, false
	}
	it := q.items[q.head]
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= fifoCompactThreshold && q.head*2 >= len(q.items):
		// Amortized O(1): at least half the array is dead before we pay
		// one copy of the live half.
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it, true
}

func (q *fifoQueue) Len() int    { return len(q.items) - q.head }
func (q *fifoQueue) Empty() bool { return q.Len() == 0 }
