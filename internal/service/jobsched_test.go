package service

import (
	"testing"

	"relaxsched/internal/ranktrack"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
)

func TestNewJobSchedulerNames(t *testing.T) {
	for _, name := range JobSchedNames() {
		s, err := NewJobScheduler(name, 4, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s.Insert(sched.Item{Task: 1, Priority: 10})
		s.Insert(sched.Item{Task: 2, Priority: 5})
		if s.Len() != 2 {
			t.Fatalf("%s: Len = %d", name, s.Len())
		}
		if _, ok := s.ApproxGetMin(); !ok {
			t.Fatalf("%s: pop failed", name)
		}
	}
	if _, err := NewJobScheduler("mystery", 4, 64, 1); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := NewJobScheduler(JobSchedMultiQueue, 0, 64, 1); err == nil {
		t.Fatal("zero relaxation accepted")
	}
}

// TestFIFOQueueOrder: the fifo baseline dispenses in submission order,
// ignoring priorities entirely.
func TestFIFOQueueOrder(t *testing.T) {
	q := newFIFOQueue(4)
	in := []sched.Item{{Task: 1, Priority: 9}, {Task: 2, Priority: 1}, {Task: 3, Priority: 5}}
	for _, it := range in {
		q.Insert(it)
	}
	for i, want := range in {
		got, ok := q.ApproxGetMin()
		if !ok || got != want {
			t.Fatalf("pop %d = %v, %v; want %v", i, got, ok, want)
		}
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("queue not empty after draining: len=%d", q.Len())
	}
	if _, ok := q.ApproxGetMin(); ok {
		t.Fatal("empty queue popped")
	}
	// Interleaved insert/pop keeps FIFO order across the head-reset.
	q.Insert(sched.Item{Task: 4, Priority: 0})
	q.Insert(sched.Item{Task: 5, Priority: 7})
	if it, _ := q.ApproxGetMin(); it.Task != 4 {
		t.Fatalf("got task %d, want 4", it.Task)
	}
	q.Insert(sched.Item{Task: 6, Priority: 3})
	for _, want := range []int32{5, 6} {
		if it, _ := q.ApproxGetMin(); it.Task != want {
			t.Fatalf("got task %d, want %d", it.Task, want)
		}
	}
}

// TestFIFOQueueBoundedUnderSustainedBacklog: a queue that never fully
// drains (the saturated-service regime) must not grow its backing array
// without bound — the dead prefix is compacted away.
func TestFIFOQueueBoundedUnderSustainedBacklog(t *testing.T) {
	q := newFIFOQueue(4)
	const depth = 256
	for i := 0; i < depth; i++ {
		q.Insert(sched.Item{Task: int32(i)})
	}
	for i := 0; i < 1_000_000; i++ {
		if _, ok := q.ApproxGetMin(); !ok {
			t.Fatal("pop failed with a full backlog")
		}
		q.Insert(sched.Item{Task: int32(depth + i)})
		if q.Len() != depth {
			t.Fatalf("backlog depth drifted to %d", q.Len())
		}
	}
	if c := cap(q.items); c > 4*depth+fifoCompactThreshold {
		t.Fatalf("backing array grew to cap %d for a depth-%d backlog", c, depth)
	}
	// FIFO order survived a million compaction-eligible operations: items
	// 0..999999 were popped in insertion order, so item 1000000 is next.
	it, _ := q.ApproxGetMin()
	if it.Task != 1_000_000 {
		t.Fatalf("head task = %d after sustained backlog", it.Task)
	}
}

// TestRankTrackerAgreesWithExactScheduler: popping an exact heap must
// always observe rank 1 through the tracker, measured exactly as the
// manager measures it. (The tracker's own unit tests live in
// internal/ranktrack.)
func TestRankTrackerAgreesWithExactScheduler(t *testing.T) {
	s, err := NewJobScheduler(JobSchedExact, 1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	var tr ranktrack.Tracker
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		it := sched.Item{Task: int32(i), Priority: uint32(r.Intn(50))}
		s.Insert(it)
		tr.Insert(it)
	}
	for {
		it, ok := s.ApproxGetMin()
		if !ok {
			break
		}
		if rank := tr.Remove(it); rank != 1 {
			t.Fatalf("exact heap dispensed rank %d", rank)
		}
	}
}

// TestKBoundedJobSchedRankBound: the deterministic k-bounded queue never
// dispenses an item of rank beyond k, measured through the tracker exactly
// as the manager measures it.
func TestKBoundedJobSchedRankBound(t *testing.T) {
	const k = 4
	s, err := NewJobScheduler(JobSchedKBounded, k, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	var tr ranktrack.Tracker
	r := rng.New(11)
	live := 0
	for i := 0; i < 500; i++ {
		if live == 0 || r.Intn(3) != 0 {
			it := sched.Item{Task: int32(i), Priority: uint32(r.Intn(100))}
			s.Insert(it)
			tr.Insert(it)
			live++
		} else {
			it, ok := s.ApproxGetMin()
			if !ok {
				t.Fatal("pop failed with live items")
			}
			if rank := tr.Remove(it); rank < 1 || rank > k {
				t.Fatalf("kbounded dispensed rank %d, bound %d", rank, k)
			}
			live--
		}
	}
}
