package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/stats"
)

// LoadConfig configures RunLoad, the closed-loop load generator behind
// cmd/relaxload and the service smoke tests: Clients goroutines each
// submit a job, poll until it finishes, and immediately submit the next —
// the classic closed-loop model, so offered load adapts to service
// capacity instead of overrunning it. The target may be a single relaxd
// node or a relaxgw gateway; the wire API is identical.
type LoadConfig struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients (default 4).
	Clients int
	// Jobs is the total number of jobs to push through (default 32).
	Jobs int
	// Workloads is the job mix, cycled per job (default all six registry
	// workloads).
	Workloads []string
	// Mode is the execution mode every job runs in (default concurrent).
	Mode string
	// Threads is the per-job worker count for modes concurrent/exact
	// (default 2).
	Threads int
	// Graph is the input every job asks for; one spec means the graph
	// cache should serve every job after the first from memory (and, via
	// a gateway, that every job lands on the one backend owning the key).
	Graph GraphSpec
	// GraphSeeds > 1 cycles job i's generator seed over [Graph.Seed,
	// Graph.Seed+GraphSeeds), spreading the run across that many distinct
	// graph keys — through a gateway, across that many ring positions —
	// while each seed still repeats often enough to exercise the caches
	// (default 1: every job shares one graph).
	GraphSeeds int
	// PrioritySpread makes job i carry priority (i*7919)%PrioritySpread,
	// giving the job queue a non-trivial priority distribution to relax
	// against (default 100; 1 makes every job equal-priority).
	PrioritySpread int
	// PollInterval is the status-poll period (default 2ms).
	PollInterval time.Duration
	// Verify asks each job to run its exactness oracle (default true —
	// set by callers; the zero value disables verification).
	Verify bool
	// HTTPClient overrides the typed client's underlying *http.Client
	// (default: the api package's shared timed client).
	HTTPClient *http.Client
	// Progress, when non-nil with a positive ProgressInterval, receives a
	// one-line rolling summary every interval: submit attempts, accepted
	// jobs, terminal jobs, admission rejections, and the current
	// client-observed p99 latency.
	Progress io.Writer
	// ProgressInterval is the period of the progress line (0 disables).
	ProgressInterval time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 32
	}
	if len(c.Workloads) == 0 {
		for _, info := range Workloads() {
			c.Workloads = append(c.Workloads, info.Name)
		}
	}
	if c.Mode == "" {
		c.Mode = "concurrent"
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.Graph.N == 0 {
		c.Graph = GraphSpec{Model: ModelGNP, N: 2000, Edges: 8000, Seed: 1}
	}
	if c.PrioritySpread == 0 {
		c.PrioritySpread = 100
	}
	if c.GraphSeeds == 0 {
		c.GraphSeeds = 1
	}
	if c.PollInterval == 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	return c
}

// client builds the typed API client the whole run shares — one
// http.Client (with timeouts) under every closed-loop goroutine.
func (c LoadConfig) client() *api.Client {
	cli := api.NewClient(strings.TrimRight(c.BaseURL, "/"))
	if c.HTTPClient != nil {
		cli.HTTP = c.HTTPClient
	}
	return cli
}

// LoadResult is the outcome of one load run.
type LoadResult struct {
	// Jobs counts completed jobs; Failed counts jobs that ended failed or
	// canceled; Rejected counts 429/503 submission rejections (retried).
	Jobs     int
	Failed   int
	Rejected int
	// Unfinished counts jobs the service accepted (a 202 was observed)
	// that this run never saw reach a terminal state — because the run
	// errored out mid-poll or the server went away. Non-zero Unfinished
	// means the summary's Jobs/Failed split does not account for every
	// accepted job; crash harnesses reconcile these ids after a restart.
	Unfinished int
	// Accepted lists every job id the service acknowledged, in acceptance
	// order per client; Terminal maps the subset this run observed
	// reaching a terminal state to that state.
	Accepted []int64
	Terminal map[int64]JobState
	// Elapsed is the wall-clock span of the whole run.
	Elapsed time.Duration
	// Throughput is Jobs / Elapsed, in jobs per second.
	Throughput float64
	// Latency summarizes the client-observed submit→done latency in
	// seconds.
	Latency stats.Summary
	// Metrics is the service's /v1/metrics snapshot taken after the run,
	// carrying the server-side view: rank error, queue latency, cache
	// hit rate. Against a gateway this is the cluster-wide aggregate
	// (global rank error, summed cache counters).
	Metrics Metrics
}

// Format renders the result as the relaxload report.
func (r LoadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: %d done, %d failed, %d rejected in %v (%.1f jobs/s)\n",
		r.Jobs, r.Failed, r.Rejected, r.Elapsed.Round(time.Millisecond), r.Throughput)
	if r.Unfinished > 0 {
		fmt.Fprintf(&b, "WARNING: %d accepted jobs never reached a terminal state during this run\n",
			r.Unfinished)
	}
	fmt.Fprintf(&b, "client latency (ms): mean=%.2f p50=%.2f p95=%.2f max=%.2f\n",
		r.Latency.Mean*1e3, r.Latency.P50*1e3, r.Latency.P95*1e3, r.Latency.Max*1e3)
	m := r.Metrics
	fmt.Fprintf(&b, "server queue  (ms): mean=%.2f p50=%.2f p99=%.2f max=%.2f\n",
		m.QueueLatency.MeanMs, m.QueueLatency.P50Ms, m.QueueLatency.P99Ms, m.QueueLatency.MaxMs)
	fmt.Fprintf(&b, "job sched: %s (k=%d)  rank error: mean=%.2f max=%d over %d dispatches\n",
		m.JobSched, m.JobSchedK, m.RankError.Mean, m.RankError.Max, m.RankError.Count)
	if c := m.Controller; c != nil && c.Enabled {
		fmt.Fprintf(&b, "controller: k=%d batch=%d  %d widened / %d tightened over %d steps  violations: rank=%d p99=%d\n",
			c.K, c.Batch, c.Widened, c.Tightened, c.Steps, c.RankViolations, c.P99Violations)
	}
	fmt.Fprintf(&b, "graph cache: %d/%d entries, %d hits, %d misses, %d evictions\n",
		m.Cache.Entries, m.Cache.Capacity, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions)
	fmt.Fprintf(&b, "wasted work: %d (of %d pops, %d stale)\n",
		m.Cost.Wasted, m.Cost.Pops, m.Cost.StalePops)
	return b.String()
}

// RunLoad drives the service at cfg.BaseURL with a closed-loop client fleet
// until cfg.Jobs jobs completed (done, failed or canceled). Submission
// rejections (queue full, draining) are counted and retried — closed-loop
// clients back off rather than drop work, honoring the server's
// retry_after_ms hint when the envelope carries one.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return LoadResult{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	cli := cfg.client()

	var (
		mu        sync.Mutex
		latencies []float64
		res       LoadResult
		firstErr  error
		counters  loadCounters
	)
	next := make(chan int, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		next <- i
	}
	close(next)

	res.Terminal = make(map[int64]JobState)
	start := time.Now()

	if cfg.Progress != nil && cfg.ProgressInterval > 0 {
		stopProgress := make(chan struct{})
		progressDone := make(chan struct{})
		// The goroutine is joined, not just signaled: the caller may write
		// its report to the same writer the moment RunLoad returns.
		defer func() {
			close(stopProgress)
			<-progressDone
		}()
		go func() {
			defer close(progressDone)
			t := time.NewTicker(cfg.ProgressInterval)
			defer t.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-t.C:
					mu.Lock()
					sample := append([]float64(nil), latencies...)
					mu.Unlock()
					p99 := 0.0
					if len(sample) > 0 {
						p99, _ = stats.Percentile(sample, 99)
					}
					fmt.Fprintf(cfg.Progress,
						"progress: submitted=%d accepted=%d terminal=%d rejected=%d p99=%.1fms\n",
						counters.submitted.Load(), counters.accepted.Load(),
						counters.terminal.Load(), counters.rejected.Load(), p99*1e3)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				id, lat, state, rejected, err := runOneJob(ctx, cli, cfg, i, &counters)
				mu.Lock()
				res.Rejected += rejected
				if id != 0 {
					// Accepted is recorded before the error check: a job
					// whose acceptance was observed but whose poll then
					// failed is exactly what Unfinished must count.
					res.Accepted = append(res.Accepted, id)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				res.Jobs++
				if state != StateDone {
					res.Failed++
				}
				res.Terminal[id] = state
				latencies = append(latencies, lat.Seconds())
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Unfinished = len(res.Accepted) - len(res.Terminal)
	if firstErr != nil {
		return res, firstErr
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Jobs) / res.Elapsed.Seconds()
	}
	res.Latency = stats.Summarize(latencies)
	// The server-side snapshot is half the report; an all-zero Metrics from
	// a swallowed fetch error would be indistinguishable from a real
	// measurement, so the failure is surfaced.
	m, err := cli.Metrics(ctx)
	if err != nil {
		return res, fmt.Errorf("loadgen: fetching final metrics: %w", err)
	}
	res.Metrics = m
	return res, nil
}

// loadCounters are the live counts behind the rolling progress line,
// updated by every closed-loop client as it goes.
type loadCounters struct {
	submitted atomic.Int64 // submit attempts, including rejected retries
	accepted  atomic.Int64 // jobs the service acknowledged with a 202
	terminal  atomic.Int64 // jobs observed reaching done/failed/canceled
	rejected  atomic.Int64 // queue-full and draining rejections
}

// runOneJob submits job i (retrying admission rejections with the
// server-suggested backoff) and polls it to completion, returning the
// accepted job id (0 if acceptance was never observed), the
// client-observed latency and the final state. The id is returned even
// when the poll errors out, so the caller can account for accepted jobs
// whose fate this run never saw.
func runOneJob(ctx context.Context, cli *api.Client, cfg LoadConfig, i int, counters *loadCounters) (int64, time.Duration, JobState, int, error) {
	spec := defaultJobSpec()
	spec.Workload = cfg.Workloads[i%len(cfg.Workloads)]
	spec.Mode = cfg.Mode
	spec.Threads = cfg.Threads
	spec.Graph = cfg.Graph
	spec.Graph.Seed = cfg.Graph.Seed + uint64(i%cfg.GraphSeeds)
	spec.Priority = uint32((i * 7919) % cfg.PrioritySpread)
	spec.Seed = uint64(i + 1)
	spec.Verify = cfg.Verify

	rejected := 0
	start := time.Now()
	var id int64
	for {
		if err := ctx.Err(); err != nil {
			return 0, 0, "", rejected, err
		}
		counters.submitted.Add(1)
		st, err := cli.Submit(ctx, spec)
		if err != nil {
			if api.IsCode(err, api.CodeQueueFull) || api.IsCode(err, api.CodeDraining) {
				rejected++
				counters.rejected.Add(1)
				wait := cfg.PollInterval
				var e *api.Error
				if errors.As(err, &e) && e.RetryAfterMS > 0 {
					wait = time.Duration(e.RetryAfterMS) * time.Millisecond
				}
				select {
				case <-ctx.Done():
					return 0, 0, "", rejected, ctx.Err()
				case <-time.After(wait):
				}
				continue
			}
			return 0, 0, "", rejected, fmt.Errorf("loadgen: submit: %w", err)
		}
		id = st.ID
		counters.accepted.Add(1)
		break
	}

	for {
		select {
		case <-ctx.Done():
			return id, 0, "", rejected, ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
		st, err := cli.Status(ctx, id)
		if err != nil {
			return id, 0, "", rejected, fmt.Errorf("loadgen: status: %w", err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			counters.terminal.Add(1)
			return id, time.Since(start), st.State, rejected, nil
		}
	}
}

// FetchMetrics GETs and decodes a service's /v1/metrics snapshot through
// the typed client. client overrides the underlying *http.Client when
// non-nil.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (Metrics, error) {
	c := api.NewClient(strings.TrimRight(baseURL, "/"))
	if client != nil {
		c.HTTP = client
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return Metrics{}, fmt.Errorf("loadgen: fetching metrics: %w", err)
	}
	return m, nil
}
