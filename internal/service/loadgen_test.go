package service

import (
	"context"
	"strings"
	"testing"
)

// TestRunLoadClosedLoop drives a small closed-loop load through a real
// manager over HTTP and checks the report end to end: all jobs done, cache
// serving everything after the first build, rank error recorded.
func TestRunLoadClosedLoop(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 2, JobSched: JobSchedMultiQueue, JobSchedK: 4})

	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   srv.URL,
		Clients:   3,
		Jobs:      12,
		Workloads: []string{"mis", "pagerank", "sssp"},
		Mode:      "concurrent",
		Graph:     GraphSpec{Model: ModelGNP, N: 500, Edges: 2000, Seed: 1},
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 12 || res.Failed != 0 {
		t.Fatalf("load result: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Latency.N != 12 {
		t.Fatalf("latency samples = %d", res.Latency.N)
	}
	if res.Metrics.Jobs.Done != 12 {
		t.Fatalf("server saw %d done jobs", res.Metrics.Jobs.Done)
	}
	if res.Metrics.Cache.Misses != 1 || res.Metrics.Cache.Hits != 11 {
		t.Fatalf("cache stats: %+v", res.Metrics.Cache)
	}
	if res.Metrics.RankError.Count != 12 {
		t.Fatalf("rank error count: %+v", res.Metrics.RankError)
	}

	// Every accepted job was observed terminal: the unfinished ledger must
	// balance exactly.
	if len(res.Accepted) != 12 || len(res.Terminal) != 12 || res.Unfinished != 0 {
		t.Fatalf("accepted=%d terminal=%d unfinished=%d, want 12/12/0",
			len(res.Accepted), len(res.Terminal), res.Unfinished)
	}
	for _, id := range res.Accepted {
		if st, ok := res.Terminal[id]; !ok || st != StateDone {
			t.Fatalf("accepted job %d terminal state = %v (tracked %v)", id, st, ok)
		}
	}

	report := res.Format()
	for _, want := range []string{"12 done", "rank error", "graph cache", "multiqueue"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "WARNING") {
		t.Fatalf("clean run reported unfinished jobs:\n%s", report)
	}
}

// TestLoadResultReportsUnfinished: a run that loses track of accepted jobs
// (crashed server, interrupted poll) must say so in the report instead of
// silently dropping them from the summary.
func TestLoadResultReportsUnfinished(t *testing.T) {
	r := LoadResult{
		Jobs:       3,
		Unfinished: 2,
		Accepted:   []int64{1, 2, 3, 4, 5},
		Terminal:   map[int64]JobState{1: StateDone, 2: StateDone, 3: StateFailed},
	}
	report := r.Format()
	if !strings.Contains(report, "WARNING: 2 accepted jobs never reached a terminal state") {
		t.Fatalf("report missing unfinished warning:\n%s", report)
	}
}

// TestRunLoadBacksOffWhenQueueFull: a 1-worker, depth-1 service forces the
// closed-loop clients through the 429 path; every job still completes.
func TestRunLoadBacksOffWhenQueueFull(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// Jobs big enough that the single worker stays busy for many poll
	// intervals even with the graph cache warm: with one slot queued behind
	// it, the other clients must hit the 429 path. (At 60k nodes a warm-cache
	// MIS pass occasionally finished inside the submit gap and the run saw
	// zero rejections.)
	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   srv.URL,
		Clients:   4,
		Jobs:      8,
		Workloads: []string{"mis"},
		Mode:      "sequential",
		Graph:     GraphSpec{Model: ModelGNP, N: 400_000, Edges: 1_600_000, Seed: 2},
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 8 || res.Failed != 0 {
		t.Fatalf("load result: %+v", res)
	}
	if res.Rejected == 0 {
		t.Fatal("depth-1 queue under 4 clients never rejected a submission")
	}
}

func TestRunLoadRequiresBaseURL(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
}
