package service

import (
	"relaxsched/internal/stats"
)

// latencyRing accumulates latency samples: exact running count/mean/max
// plus a bounded ring of recent samples for percentile estimation, so a
// long-lived service never grows its metrics storage. Callers synchronize
// (the manager records under its mutex).
type latencyRing struct {
	acc  stats.Accumulator
	ring []float64 // seconds; len grows to cap then wraps
	next int
	full bool
}

const latencyRingSize = 4096

func (l *latencyRing) add(seconds float64) {
	if l.ring == nil {
		l.ring = make([]float64, latencyRingSize)
	}
	l.acc.Add(seconds)
	l.ring[l.next] = seconds
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
}

func (l *latencyRing) summary() LatencySummary {
	s := LatencySummary{
		Count:  l.acc.N(),
		MeanMs: l.acc.Mean() * 1e3,
		MaxMs:  l.acc.Max() * 1e3,
	}
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	if n > 0 {
		window := l.ring[:n]
		p50, _ := stats.Percentile(window, 50)
		p95, _ := stats.Percentile(window, 95)
		p99, _ := stats.Percentile(window, 99)
		s.P50Ms, s.P95Ms, s.P99Ms = p50*1e3, p95*1e3, p99*1e3
	}
	return s
}

// LatencySummary summarizes a latency distribution in milliseconds. Count,
// mean and max are exact over the service lifetime; the percentiles are
// computed over a sliding window of the most recent samples.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// RankErrorStats summarizes the observed per-job scheduling rank error —
// the number of pending jobs that were strictly better (lower priority
// value) than the one the job queue dispensed, the paper's rank error
// measured at job granularity. An exact job scheduler reports all zeros.
type RankErrorStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
}

// JobCounts breaks the jobs the service has seen down by outcome. Queued
// and Running are instantaneous gauges; the rest are lifetime counters.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Rejected counts submissions refused by admission control (queue full
	// or draining); they never became jobs.
	Rejected int64 `json:"rejected"`
}

// CostTotals accumulates the work accounting of every finished job.
type CostTotals struct {
	Pops      int64 `json:"pops"`
	StalePops int64 `json:"stale_pops"`
	// Wasted sums each workload's headline wasted-work metric (extra
	// iterations, stale pops, re-evaluations — see the registry's
	// WastedWork labels).
	Wasted int64 `json:"wasted"`
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	// UptimeSeconds is the time since the manager started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// JobSched and JobSchedK identify the scheduler the pending-job queue
	// runs on; Workers and QueueCapacity are the pool size and admission
	// bound.
	JobSched      string `json:"job_sched"`
	JobSchedK     int    `json:"job_sched_k"`
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	// Draining reports whether the manager has stopped accepting jobs.
	Draining bool `json:"draining"`

	Jobs  JobCounts  `json:"jobs"`
	Cache CacheStats `json:"cache"`
	Cost  CostTotals `json:"cost"`
	// RankError is the job queue's observed relaxation.
	RankError RankErrorStats `json:"rank_error"`
	// QueueLatency measures submit→dispatch; ExecLatency measures the
	// execution itself (excluding queueing and graph build).
	QueueLatency LatencySummary `json:"queue_latency"`
	ExecLatency  LatencySummary `json:"exec_latency"`
}
