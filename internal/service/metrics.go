package service

import (
	"relaxsched/internal/stats"
)

// latencyRing accumulates latency samples: exact running count/mean/max
// plus a bounded ring of recent samples for percentile estimation, so a
// long-lived service never grows its metrics storage. Callers synchronize
// (the manager records under its mutex). The wire-facing summary type
// lives in internal/api.
type latencyRing struct {
	acc  stats.Accumulator
	ring []float64 // seconds; len grows to cap then wraps
	next int
	full bool
}

const latencyRingSize = 4096

func (l *latencyRing) add(seconds float64) {
	if l.ring == nil {
		l.ring = make([]float64, latencyRingSize)
	}
	l.acc.Add(seconds)
	l.ring[l.next] = seconds
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
}

func (l *latencyRing) summary() LatencySummary {
	s := LatencySummary{
		Count:  l.acc.N(),
		MeanMs: l.acc.Mean() * 1e3,
		MaxMs:  l.acc.Max() * 1e3,
	}
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	if n > 0 {
		window := l.ring[:n]
		p50, _ := stats.Percentile(window, 50)
		p95, _ := stats.Percentile(window, 95)
		p99, _ := stats.Percentile(window, 99)
		s.P50Ms, s.P95Ms, s.P99Ms = p50*1e3, p95*1e3, p99*1e3
	}
	return s
}
