// Package service is the long-running job-execution subsystem behind
// cmd/relaxd: a job manager whose pending queue is an internal/sched
// scheduler, a worker pool executing registry workloads through
// workload.RunModeContext, a size-bounded graph cache keyed by canonical
// generator spec, and admission control with graceful drain.
//
// The design point is the paper's thesis applied at macro scale: the
// pending-job queue is a (possibly relaxed) priority scheduler — the same
// multiqueue/kbounded/exact implementations the task executors use — so the
// service trades a bounded amount of job-ordering error for queue
// throughput, and *measures* that trade: every dispatch records the job's
// rank among all pending jobs (the paper's rank error, at job granularity)
// and its queue latency, surfaced in the /metrics snapshot.
//
// Concurrency model: all queue and bookkeeping state lives under one mutex;
// workers block on a condition variable when the queue is empty. Queue
// operations are microseconds against jobs that run for milliseconds to
// seconds, so a single lock is nowhere near the bottleneck — the executors
// behind the jobs are where the scalable concurrency lives.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"relaxsched/internal/api"
	"relaxsched/internal/control"
	"relaxsched/internal/core"
	"relaxsched/internal/metricsexport"
	"relaxsched/internal/ranktrack"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/trace"
	"relaxsched/internal/wal"
	"relaxsched/internal/workload"
)

// Admission-control errors. The HTTP layer maps them to 429 and 503.
var (
	// ErrQueueFull rejects a submission because the pending queue is at its
	// admission bound.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects a submission because the manager is shutting
	// down.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob reports a status query for an id the manager has no
	// record of (never assigned, or evicted by the finished-job retention
	// bound).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrLogUnavailable rejects a submission because the write-ahead log
	// can no longer promise durability (a sync failed earlier): the node
	// refuses admission rather than hand out acknowledgments it cannot
	// honor across a crash.
	ErrLogUnavailable = errors.New("service: job log unavailable")
)

// Options configures a Manager. Zero values select the documented defaults.
type Options struct {
	// Workers is the number of goroutines executing jobs (default 2).
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// rejected with ErrQueueFull (default 256).
	QueueDepth int
	// JobSched selects the pending-queue scheduler: exact, multiqueue,
	// kbounded, fifo (default multiqueue).
	JobSched string
	// JobSchedK is the relaxation factor for multiqueue/kbounded
	// (default 4).
	JobSchedK int
	// CacheCapacity bounds the graph cache's entry count; 0 selects the
	// default 8, negative disables caching.
	CacheCapacity int
	// Seed drives the relaxed job schedulers' randomness.
	Seed uint64
	// RetainJobs bounds how many finished jobs keep their status queryable;
	// the oldest finished jobs are forgotten first (default 65536).
	RetainJobs int

	// WALDir, when set, enables the write-ahead job log (internal/wal) in
	// that directory: accepted jobs are fsynced before the acknowledgment,
	// terminal marks before the terminal state is visible, and boot
	// replays accepted-but-unfinished jobs back into the queue at their
	// original priority. Empty disables durability (the pre-WAL behavior).
	WALDir string
	// WALSegmentBytes overrides the log's segment-rotation threshold
	// (default 4 MiB); tests use small values to exercise rotation.
	WALSegmentBytes int64

	// RankSLO is the adaptive controller's bound on the windowed mean job
	// rank error (default 2); P99SLO is its p99 queue-latency target
	// (default 5s); ControlInterval is the control-loop sampling period
	// (default 250ms). All three apply only with JobSched "auto".
	RankSLO         float64
	P99SLO          time.Duration
	ControlInterval time.Duration

	// Logger receives the manager's structured log output; every job-scoped
	// line carries job_id and trace_id. Nil discards (library default —
	// relaxd always injects one).
	Logger *slog.Logger
	// TraceCapacity bounds the per-job lifecycle trace ring served by
	// GET /v1/jobs/{id}/trace; the oldest traces are evicted first
	// (default trace.DefaultCapacity).
	TraceCapacity int

	// startPaused starts the manager without its worker pool (and, under
	// JobSched "auto", without its control loop), so tests can fill the
	// queue deterministically (admission control, 429 paths). In-package
	// only by design.
	startPaused bool
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.JobSched == "" {
		o.JobSched = JobSchedMultiQueue
	}
	if o.JobSchedK == 0 {
		o.JobSchedK = 4
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 8
	}
	if o.RetainJobs == 0 {
		o.RetainJobs = 65536
	}
	if o.RankSLO == 0 {
		o.RankSLO = 2
	}
	if o.P99SLO == 0 {
		o.P99SLO = 5 * time.Second
	}
	if o.ControlInterval == 0 {
		o.ControlInterval = 250 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = trace.DiscardLogger()
	}
	return o
}

// Manager owns the job queue, the worker pool and the graph cache.
type Manager struct {
	opts Options

	runCtx    context.Context // canceled on forced shutdown; aborts in-flight jobs
	runCancel context.CancelFunc
	cache     *graphCache
	started   time.Time
	wg        sync.WaitGroup

	// Observability: the structured logger (job-scoped lines carry job_id
	// and trace_id), the bounded per-job lifecycle trace ring behind
	// GET /v1/jobs/{id}/trace, and the log-bucketed latency histograms that
	// back the Prometheus exposition. All four are internally synchronized
	// and are used outside mu.
	logger    *slog.Logger
	rec       *trace.Recorder
	queueHist *metricsexport.Histogram
	execHist  *metricsexport.Histogram

	// Adaptive-relaxation machinery, set only under JobSched "auto": the
	// AIMD controller, the retunable queue it steers, and the shared
	// executor batch target every in-flight run re-reads. The control loop
	// has its own stop channel and WaitGroup because Close must stop it
	// before (not while) waiting out the job workers.
	ctrl      *control.Controller
	autoQueue *kbounded.Queue
	tunable   *core.TunableOptions
	ctrlStop  chan struct{}
	ctrlOnce  sync.Once
	ctrlWG    sync.WaitGroup

	// wlog is the write-ahead job log, nil without Options.WALDir. Its
	// appends fsync and therefore never run under mu; Submit holds a
	// reservation (reserved) for the admission slot while the accept
	// record syncs outside the lock.
	wlog *wal.WAL

	mu      sync.Mutex
	cond    *sync.Cond
	queue   sched.Scheduler
	tracker ranktrack.Tracker
	jobs    map[int64]*job
	// finished is the FIFO of finished job ids backing the retention bound.
	finished []int64
	nextID   int64
	pending  int
	reserved int
	running  int
	counts   JobCounts
	cost     CostTotals
	rank     ranktrack.Stats
	queueLat latencyRing
	execLat  latencyRing
	closed   bool // no new submissions; workers drain the queue
	aborted  bool // forced: workers stop popping

	// Control-loop bookkeeping (JobSched "auto" only, under mu):
	// ctrlStatus is the latest controller snapshot for Metrics;
	// lastRankCount/lastRankSum window the cumulative rank stats so each
	// control step sees only its own window's mean.
	ctrlStatus    control.Status
	lastRankCount int64
	lastRankSum   float64
}

// NewManager validates the options, builds the job scheduler and starts the
// worker pool. Callers must Close the manager to stop the workers.
func NewManager(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Workers < 1 {
		return nil, fmt.Errorf("service: worker count must be at least 1, got %d", opts.Workers)
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("service: queue depth must be at least 1, got %d", opts.QueueDepth)
	}
	var (
		ctrl      *control.Controller
		autoQueue *kbounded.Queue
		tunable   *core.TunableOptions
		queue     sched.Scheduler
	)
	if opts.JobSched == JobSchedAuto {
		// The adaptive mode owns its queue construction: the controller picks
		// the starting point (k=1, batch=1 — start exact, earn relaxation),
		// and the manager keeps the concrete *kbounded.Queue so the control
		// loop can retune it through SetK. MaxK is capped at the queue depth:
		// a rank bound beyond the deepest possible queue buys nothing.
		c, err := control.New(control.Config{
			RankSLO:  opts.RankSLO,
			P99SLOMs: float64(opts.P99SLO.Milliseconds()),
			MaxK:     min(control.DefaultMaxK, opts.QueueDepth),
		})
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		st := c.Status()
		ctrl = c
		autoQueue = kbounded.New(st.K, opts.QueueDepth)
		tunable = core.NewTunable(st.Batch)
		queue = autoQueue
	} else {
		q, err := NewJobScheduler(opts.JobSched, opts.JobSchedK, opts.QueueDepth, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		queue = q
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:      opts,
		runCtx:    ctx,
		runCancel: cancel,
		cache:     newGraphCache(opts.CacheCapacity),
		started:   time.Now(),
		logger:    opts.Logger,
		rec:       trace.NewRecorder(opts.TraceCapacity),
		queueHist: metricsexport.NewHistogram(),
		execHist:  metricsexport.NewHistogram(),
		ctrl:      ctrl,
		autoQueue: autoQueue,
		tunable:   tunable,
		queue:     queue,
		jobs:      make(map[int64]*job),
		nextID:    1,
	}
	m.cond = sync.NewCond(&m.mu)
	if m.ctrl != nil {
		m.ctrlStop = make(chan struct{})
		m.ctrlStatus = m.ctrl.Status()
	}
	if opts.WALDir != "" {
		if err := m.openLog(); err != nil {
			cancel()
			return nil, err
		}
	}
	if opts.startPaused {
		return m, nil
	}
	for w := 0; w < opts.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.worker()
		}()
	}
	if m.ctrl != nil {
		m.ctrlWG.Add(1)
		go func() {
			defer m.ctrlWG.Done()
			m.controlLoop()
		}()
	}
	return m, nil
}

// Placeholder errors for terminal jobs recovered from the log: the marks
// record the outcome kind, not the original message.
var (
	errRecoveredFailed   = errors.New("failed before restart (recovered from job log; original error not retained)")
	errRecoveredCanceled = errors.New("canceled before restart (recovered from job log)")
)

// openLog opens the write-ahead log and replays its contents into the
// manager: jobs with a durable terminal mark become queryable finished
// records again (result-less, flagged recovered), and accepted jobs with
// no mark re-enter the queue at their original priority — so the relaxed
// queue's rank accounting picks up exactly the pending set the crashed
// process had admitted. Runs before the worker pool starts, so no lock is
// held.
func (m *Manager) openLog() error {
	w, replay, err := wal.Open(wal.Options{Dir: m.opts.WALDir, SegmentBytes: m.opts.WALSegmentBytes})
	if err != nil {
		return fmt.Errorf("service: opening job log: %w", err)
	}
	m.wlog = w
	now := time.Now()
	for _, tj := range replay.Terminal {
		j := &job{id: tj.ID, spec: tj.Spec, submitted: now, recovered: true}
		switch {
		case tj.Kind == wal.KindCanceled:
			j.state = StateCanceled
			j.err = errRecoveredCanceled
			m.counts.Canceled++
		case tj.Outcome == wal.OutcomeFailed:
			j.state = StateFailed
			j.err = errRecoveredFailed
			m.counts.Failed++
		default:
			j.state = StateDone
			m.counts.Done++
		}
		m.counts.Submitted++
		m.jobs[j.id] = j
		m.retainLocked(j.id)
	}
	for _, rj := range replay.Unfinished {
		// A replayed job gets a fresh trace ID — the pre-crash one was never
		// persisted — so its re-execution is still greppable end to end.
		j := &job{id: rj.ID, spec: rj.Spec, state: StateQueued, submitted: now, recovered: true, traceID: trace.NewID()}
		m.jobs[j.id] = j
		m.rec.Begin(j.id, j.traceID)
		m.rec.Next(j.id, "queued", "recovered from job log")
		m.logger.Info("job recovered from log", "job_id", j.id, "trace_id", j.traceID,
			"workload", j.spec.Workload, "mode", j.spec.Mode)
		it := sched.Item{Task: int32(j.id), Priority: rj.Spec.Priority}
		m.queue.Insert(it)
		m.tracker.Insert(it)
		m.pending++
		m.counts.Submitted++
	}
	if replay.MaxID >= m.nextID {
		m.nextID = replay.MaxID + 1
	}
	return nil
}

// controlLoop drives the adaptive controller: every ControlInterval it takes
// one sample→decide→apply step until stopControl fires.
func (m *Manager) controlLoop() {
	t := time.NewTicker(m.opts.ControlInterval)
	defer t.Stop()
	for {
		select {
		case <-m.ctrlStop:
			return
		case <-t.C:
			m.controlStep()
		}
	}
}

// controlStep runs one control cycle: sample the windowed rank error, queue
// depth and p99 queue latency; ask the controller for a decision; apply it to
// the queue's dispatch bound and the shared executor batch target. Factored
// out of controlLoop so tests can step the loop deterministically.
func (m *Manager) controlStep() {
	m.mu.Lock()
	// Windowed mean rank error: the cumulative stats store rank−1 per
	// dispatch, so the delta sum over the delta count is exactly the
	// window's mean rank error. A window with no dispatches carries no rank
	// signal (-1 tells the controller to skip the rank check).
	rankErr := -1.0
	if dc := m.rank.Count - m.lastRankCount; dc > 0 {
		rankErr = (m.rank.Sum - m.lastRankSum) / float64(dc)
	}
	m.lastRankCount = m.rank.Count
	m.lastRankSum = m.rank.Sum
	d := m.ctrl.Step(control.Sample{
		QueueDepth: m.pending,
		QueueCap:   m.opts.QueueDepth,
		RankErr:    rankErr,
		P99Ms:      m.queueLat.summary().P99Ms,
	})
	if d.K != m.autoQueue.K() {
		m.autoQueue.SetK(d.K)
	}
	m.ctrlStatus = m.ctrl.Status()
	m.mu.Unlock()
	// The batch target is atomic; in-flight executors re-read it per batch
	// episode, no lock needed.
	m.tunable.SetBatch(d.Batch)
}

// stopControl stops the control loop, if any. It runs on its own stop
// channel and WaitGroup — not m.wg — because Close must stop it before (not
// while) waiting out the job workers; it is idempotent, like Close.
func (m *Manager) stopControl() {
	if m.ctrl == nil {
		return
	}
	m.ctrlOnce.Do(func() { close(m.ctrlStop) })
	m.ctrlWG.Wait()
}

// Submit validates a job spec and enqueues it, returning the queued job's
// status (including its assigned id). Admission control rejects with
// ErrQueueFull when the pending queue is at its bound and ErrDraining after
// Close has begun; both leave no trace beyond the rejection counter. With a
// write-ahead log, the accept record is fsynced before Submit returns —
// the acknowledgment the caller hands out is the durability guarantee.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	return m.SubmitTraced(spec, "")
}

// SubmitTraced is Submit under a caller-supplied trace ID (the HTTP layer
// forwards the request's X-Relax-Trace-Id); empty mints a fresh one. The
// ID is stamped on the job's lifecycle trace and every one of its log
// lines.
func (m *Manager) SubmitTraced(spec JobSpec, traceID string) (JobStatus, error) {
	if traceID == "" {
		traceID = trace.NewID()
	}
	if err := validateSpec(spec); err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.counts.Rejected++
		m.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	// reserved counts submissions whose accept record is still syncing:
	// they hold their admission slot so a burst of in-flight fsyncs cannot
	// overshoot the queue bound.
	if m.pending+m.reserved >= m.opts.QueueDepth {
		m.counts.Rejected++
		m.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	if m.nextID > math.MaxInt32 {
		// Job ids ride in sched.Item.Task (int32). Two billion jobs into a
		// process's life, refusing is safer than wrapping.
		m.counts.Rejected++
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: job id space exhausted")
	}
	id := m.nextID
	m.nextID++
	// The trace opens before the WAL sync so the accept span covers the
	// durability wait; a rejection below closes it with a terminal marker.
	m.rec.Begin(id, traceID)

	if m.wlog != nil {
		m.reserved++
		m.mu.Unlock()
		// The fsync (group-committed with concurrent submissions) runs
		// outside the manager lock; dispatch proceeds concurrently.
		err := m.wlog.AppendAccepted(id, spec)
		m.mu.Lock()
		m.reserved--
		if err != nil {
			m.counts.Rejected++
			m.mu.Unlock()
			m.rec.Finish(id, "rejected", "job log unavailable")
			return JobStatus{}, fmt.Errorf("%w: %v", ErrLogUnavailable, err)
		}
		if m.closed {
			// Drain began while the accept record synced. The record is
			// durable, so cancel it durably too — otherwise a later boot
			// would resurrect a job whose submitter was told "draining".
			m.counts.Rejected++
			m.mu.Unlock()
			m.rec.Finish(id, "rejected", "drain began during accept sync")
			if werr := m.wlog.AppendCanceled(id); werr != nil {
				// The compensating mark could not be persisted (poisoned
				// log); after a restart this job will replay and execute
				// even though its submitter was rejected. There is nobody
				// left to hand the error to, so log it for the operator.
				m.logger.Error("drain-rejected job: cancel mark not persisted, job may execute after restart",
					"job_id", id, "trace_id", traceID, "err", werr)
			}
			return JobStatus{}, ErrDraining
		}
		m.rec.Next(id, "wal-synced", "")
	}

	j := &job{
		id:        id,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		traceID:   traceID,
	}
	m.jobs[j.id] = j
	it := sched.Item{Task: int32(j.id), Priority: spec.Priority}
	m.queue.Insert(it)
	m.tracker.Insert(it)
	m.pending++
	m.counts.Submitted++
	m.rec.Next(id, "queued", "")
	m.cond.Signal()
	st := j.status()
	m.mu.Unlock()
	m.logger.Debug("job accepted", "job_id", id, "trace_id", traceID,
		"workload", spec.Workload, "mode", spec.Mode, "priority", spec.Priority)
	return st, nil
}

// Status returns a job's current status by id.
func (m *Manager) Status(id int64) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: id %d", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// Metrics returns a consistent snapshot of the service counters.
func (m *Manager) Metrics() Metrics {
	cache := m.cache.Stats()
	var walStats *WALStats
	if m.wlog != nil {
		s := m.wlog.Stats()
		walStats = &WALStats{
			Appends:      s.Appends,
			Fsyncs:       s.Fsyncs,
			ReplayedJobs: s.ReplayedJobs,
			Segments:     s.Segments,
			Compacted:    s.Compacted,
			Bytes:        s.Bytes,
			TornTail:     s.TornTail,
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := m.counts
	counts.Queued = int64(m.pending)
	counts.Running = int64(m.running)
	re := RankErrorStats{Count: m.rank.Count, Mean: m.rank.Mean(), Max: m.rank.Max}
	jobSchedK := m.opts.JobSchedK
	var ctrlStats *ControllerStats
	if m.ctrl != nil {
		// Under auto the configured K is meaningless — the live k lives in
		// the controller section. Reporting 0 here also keeps a cluster of
		// auto nodes from aggregating to JobSched "mixed" when their live ks
		// momentarily diverge.
		jobSchedK = 0
		cfg := m.ctrl.Config()
		st := m.ctrlStatus
		ctrlStats = &ControllerStats{
			Enabled:        true,
			K:              st.K,
			Batch:          st.Batch,
			RankSLO:        cfg.RankSLO,
			P99SLOMs:       cfg.P99SLOMs,
			Steps:          st.Steps,
			Widened:        st.Widened,
			Tightened:      st.Tightened,
			RankViolations: st.RankViolations,
			P99Violations:  st.P99Violations,
			LastAdjustment: st.LastAdjustment,
		}
	}
	return Metrics{
		UptimeSeconds:    time.Since(m.started).Seconds(),
		JobSched:         m.opts.JobSched,
		JobSchedK:        jobSchedK,
		Workers:          m.opts.Workers,
		QueueCapacity:    m.opts.QueueDepth,
		Draining:         m.closed,
		Jobs:             counts,
		Cache:            cache,
		Cost:             m.cost,
		RankError:        re,
		QueueLatency:     m.queueLat.summary(),
		ExecLatency:      m.execLat.summary(),
		QueueLatencyHist: m.queueHist.Snapshot(),
		ExecLatencyHist:  m.execHist.Snapshot(),
		Controller:       ctrlStats,
		WAL:              walStats,
	}
}

// Trace returns a job's recorded lifecycle span timeline. Jobs evicted
// from the bounded trace ring (or never admitted) report ErrUnknownJob
// even when Status still answers from the longer-lived retention map.
func (m *Manager) Trace(id int64) (api.JobTrace, error) {
	tl, ok := m.rec.Get(id)
	if !ok {
		return api.JobTrace{}, fmt.Errorf("%w: no trace for id %d", ErrUnknownJob, id)
	}
	spans := make([]api.TraceSpan, len(tl.Spans))
	for i, s := range tl.Spans {
		spans[i] = api.TraceSpan{Name: s.Name, StartNanos: s.StartNanos, EndNanos: s.EndNanos, Detail: s.Detail}
	}
	return api.JobTrace{ID: id, TraceID: tl.TraceID, StartedAt: tl.Start, Spans: spans}, nil
}

// BeginDrain stops admission without waiting: from this point submissions
// return ErrDraining and the workers run the queue dry. It is Close's
// first action; it is exported for callers that want to stop admission
// some time before they are ready to block in Close.
func (m *Manager) BeginDrain() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Close drains the manager: new submissions are rejected immediately (as
// with BeginDrain), and the workers run the already-queued jobs to
// completion. If ctx expires first, the drain turns forced — in-flight
// concurrent and relaxed executions abort (workload.RunModeContext; a
// sequential-mode job cannot be preempted and finishes on its own),
// still-queued jobs flip to StateCanceled, and Close returns ctx's error.
// Close is idempotent; every call waits for the workers to exit.
func (m *Manager) Close(ctx context.Context) error {
	m.stopControl()
	m.BeginDrain()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()

	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		m.aborted = true
		m.cond.Broadcast()
		m.mu.Unlock()
		m.runCancel() // aborts in-flight RunModeContext executions
		<-workersDone
	}
	m.runCancel()

	// Whatever is still queued (forced drain only) will never run. Pop it
	// all first, make the cancel marks durable, and only then expose the
	// canceled states — the same mark-durable-before-visible order finish
	// enforces, so a crash in between re-runs the jobs on the next boot
	// instead of contradicting a cancellation a client already observed.
	var canceled []*job
	m.mu.Lock()
	for m.pending > 0 {
		it, ok := m.queue.ApproxGetMin()
		if !ok {
			break
		}
		m.tracker.Remove(it)
		m.pending--
		if j := m.jobs[int64(it.Task)]; j != nil && j.state == StateQueued {
			canceled = append(canceled, j)
		}
	}
	m.mu.Unlock()

	if m.wlog != nil {
		// A forced drain is a deliberate discard: mark the abandoned jobs
		// canceled durably so a later boot does not resurrect them. (After
		// SIGKILL there are no marks — that is the point: unfinished jobs
		// replay.)
		durable := 0
		for _, j := range canceled {
			werr := m.wlog.AppendCanceled(j.id)
			if werr != nil {
				// The log can no longer record cancellations (poisoned sync,
				// most likely). Leave the remaining jobs in their queued
				// state — the next boot replays and runs them, and a visible
				// "canceled" would promise the opposite — and surface the
				// failure alongside any drain-deadline error.
				err = errors.Join(err, fmt.Errorf("service: recording drain cancellations: %w", werr))
				break
			}
			durable++
		}
		canceled = canceled[:durable]
	}

	m.mu.Lock()
	for _, j := range canceled {
		j.state = StateCanceled
		j.err = context.Canceled
		m.counts.Canceled++
		m.retainLocked(j.id)
	}
	m.mu.Unlock()
	for _, j := range canceled {
		m.rec.Finish(j.id, "canceled", "forced drain discarded the queue")
		m.logger.Info("job canceled", "job_id", j.id, "trace_id", j.traceID,
			"workload", j.spec.Workload, "mode", j.spec.Mode, "reason", "forced drain")
	}

	if m.wlog != nil {
		if cerr := m.wlog.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// worker is one pool goroutine: pop → execute → record, until the queue is
// drained after Close (or immediately on a forced abort).
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		for !m.aborted && !m.closed && m.pending == 0 {
			m.cond.Wait()
		}
		if m.aborted || m.pending == 0 {
			// aborted, or closed with nothing left to drain.
			m.mu.Unlock()
			return
		}
		it, ok := m.queue.ApproxGetMin()
		if !ok {
			// The scheduler and the pending count disagree — a scheduler
			// bug; give other workers a chance rather than spinning.
			m.mu.Unlock()
			return
		}
		rank := m.tracker.Remove(it)
		m.pending--
		j := m.jobs[int64(it.Task)]
		j.state = StateRunning
		j.queueRank = rank
		j.queueTime = time.Since(j.submitted)
		m.running++
		m.rank.Observe(rank)
		m.queueLat.add(j.queueTime.Seconds())
		// The dispatch span records the paper's per-job quality metric right
		// where it is observed: this job's rank among all pending jobs.
		m.rec.Next(j.id, "dispatched", fmt.Sprintf("queue_rank=%d rank_err=%d", rank, rank-1))
		m.mu.Unlock()
		m.queueHist.Observe(j.queueTime.Seconds())

		m.execute(j)
	}
}

// execute runs one job end to end: graph (via the cache), execution through
// the registry's context-aware mode dispatch, optional verification, then
// result recording.
func (m *Manager) execute(j *job) {
	// The span opens pessimistically as a build; a cache hit amends the
	// name once Get reports which it was.
	m.rec.Next(j.id, "graph-build", "")
	g, hit, err := m.cache.Get(j.spec.Graph)
	if err != nil {
		m.finish(j, nil, fmt.Errorf("building graph: %w", err), 0)
		return
	}
	if hit {
		m.rec.Amend(j.id, "cache-hit", "")
	}
	d, err := workload.Lookup(j.spec.Workload)
	if err != nil {
		m.finish(j, nil, err, 0)
		return
	}
	cfg, err := runConfig(j.spec)
	if err != nil {
		m.finish(j, nil, err, 0)
		return
	}
	if m.tunable != nil && j.spec.Batch == 0 {
		// Adaptive mode steers the executor batch size too — but an explicit
		// per-job batch in the spec wins over the controller.
		cfg.Tunable = m.tunable
	}
	m.rec.Next(j.id, "executing", "")
	res, err := d.RunModeContext(m.runCtx, g, cfg, runParams(j.spec))
	if err != nil {
		m.finish(j, nil, err, 0)
		return
	}
	verified := false
	if j.spec.Verify {
		if err := res.Instance.Verify(res.Output); err != nil {
			m.finish(j, nil, fmt.Errorf("verification failed: %w", err), 0)
			return
		}
		verified = true
	}
	m.finish(j, &JobResult{
		Summary:         res.Output.Summary(),
		Verified:        verified,
		Pops:            res.Cost.Pops,
		StalePops:       res.Cost.StalePops,
		Wasted:          res.Cost.Wasted,
		WastedWorkLabel: d.WastedWork,
		ExecNanos:       res.Elapsed.Nanoseconds(),
		GraphCacheHit:   hit,
		Steals:          res.Cost.Steals,
		GlobalFallbacks: res.Cost.GlobalFallbacks,
		EmptyPolls:      res.Cost.EmptyPolls,
	}, nil, res.Elapsed)
}

// finish records a job's outcome and applies the finished-job retention
// bound. With a write-ahead log the terminal mark is fsynced before the
// state change becomes visible: once a client observes done, the job can
// never re-run after a crash — the no-duplicate-execution half of the
// durability contract.
func (m *Manager) finish(j *job, result *JobResult, err error, elapsed time.Duration) {
	if m.wlog != nil {
		var werr error
		switch {
		case err == nil:
			werr = m.wlog.AppendCompleted(j.id, wal.OutcomeDone)
		case errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled):
			werr = m.wlog.AppendCanceled(j.id)
		default:
			werr = m.wlog.AppendCompleted(j.id, wal.OutcomeFailed)
		}
		if werr != nil && err == nil {
			// The work ran but its completion cannot be made durable, so
			// "done" cannot be promised: report the job failed (with the
			// log error) rather than hand out a done the next boot would
			// contradict by re-running the job. The poisoned log is already
			// rejecting new admissions at this point.
			result = nil
			err = fmt.Errorf("%w: recording completion: %v", ErrLogUnavailable, werr)
		}
	}
	m.mu.Lock()
	m.running--
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		m.counts.Done++
		m.cost.Pops += result.Pops
		m.cost.StalePops += result.StalePops
		m.cost.Wasted += result.Wasted
		m.cost.Steals += result.Steals
		m.cost.GlobalFallbacks += result.GlobalFallbacks
		m.cost.EmptyPolls += result.EmptyPolls
		m.execLat.add(elapsed.Seconds())
	case errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
		m.counts.Canceled++
	default:
		j.state = StateFailed
		j.err = err
		m.counts.Failed++
	}
	state := j.state
	m.retainLocked(j.id)
	m.mu.Unlock()

	switch state {
	case StateDone:
		m.execHist.Observe(elapsed.Seconds())
		m.rec.Finish(j.id, "done", result.Summary)
		m.logger.Info("job done", "job_id", j.id, "trace_id", j.traceID,
			"workload", j.spec.Workload, "mode", j.spec.Mode,
			"exec_ms", float64(elapsed.Nanoseconds())/1e6,
			"queue_ms", float64(j.queueTime.Nanoseconds())/1e6,
			"queue_rank", j.queueRank, "cache_hit", result.GraphCacheHit)
	case StateCanceled:
		m.rec.Finish(j.id, "canceled", err.Error())
		m.logger.Info("job canceled", "job_id", j.id, "trace_id", j.traceID,
			"workload", j.spec.Workload, "mode", j.spec.Mode)
	default:
		m.rec.Finish(j.id, "failed", err.Error())
		m.logger.Warn("job failed", "job_id", j.id, "trace_id", j.traceID,
			"workload", j.spec.Workload, "mode", j.spec.Mode, "err", err)
	}
}

// retainLocked appends a finished job to the retention FIFO and forgets the
// oldest finished jobs beyond the bound. Callers hold m.mu.
func (m *Manager) retainLocked(id int64) {
	m.finished = append(m.finished, id)
	for len(m.finished) > m.opts.RetainJobs {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, evict)
	}
}
