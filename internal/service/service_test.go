package service

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// testSpec returns a small valid job spec for unit tests.
func testSpec(workloadName, mode string) JobSpec {
	spec := defaultJobSpec()
	spec.Workload = workloadName
	spec.Mode = mode
	spec.Graph = GraphSpec{Model: ModelGNP, N: 400, Edges: 1600, Seed: 7}
	spec.Seed = 5
	return spec
}

// waitJob polls the manager until the job leaves the queued/running states.
func waitJob(t *testing.T, m *Manager, id int64) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d did not finish", id)
	return JobStatus{}
}

// TestManagerEndToEndAllWorkloadsAllModes is the subsystem's core
// acceptance: every registry workload in every execution mode submits,
// executes, verifies and reports a result through the manager, and every
// dispatch records a queue rank.
func TestManagerEndToEndAllWorkloadsAllModes(t *testing.T) {
	m, err := NewManager(Options{Workers: 2, JobSched: JobSchedMultiQueue, JobSchedK: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	workloads := []string{"mis", "coloring", "matching", "sssp", "kcore", "pagerank"}
	modes := []string{"sequential", "relaxed", "concurrent", "exact"}
	var ids []int64
	for _, wl := range workloads {
		for _, mode := range modes {
			st, err := m.Submit(testSpec(wl, mode))
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, mode, err)
			}
			if st.State != StateQueued {
				t.Fatalf("%s/%s: submitted job in state %q", wl, mode, st.State)
			}
			ids = append(ids, st.ID)
		}
	}
	for i, id := range ids {
		st := waitJob(t, m, id)
		if st.State != StateDone {
			t.Fatalf("%s/%s: job ended %q: %s", workloads[i/len(modes)], modes[i%len(modes)], st.State, st.Error)
		}
		if !st.Result.Verified {
			t.Fatalf("job %d not verified", id)
		}
		if st.Result.Summary == "" || st.Result.WastedWorkLabel == "" {
			t.Fatalf("job %d result incomplete: %+v", id, st.Result)
		}
		if st.QueueRank < 1 {
			t.Fatalf("job %d has no queue rank", id)
		}
		if st.QueueNanos < 0 {
			t.Fatalf("job %d has negative queue latency", id)
		}
	}

	met := m.Metrics()
	if met.Jobs.Done != int64(len(ids)) {
		t.Fatalf("metrics report %d done jobs, want %d", met.Jobs.Done, len(ids))
	}
	if met.RankError.Count != int64(len(ids)) {
		t.Fatalf("metrics report %d dispatches, want %d", met.RankError.Count, len(ids))
	}
	// All 24 jobs share one graph spec: exactly one CSR build, the rest
	// cache hits (some possibly piggybacked on the in-flight build).
	if met.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", met.Cache.Misses)
	}
	if met.Cache.Hits != int64(len(ids)-1) {
		t.Fatalf("cache hits = %d, want %d", met.Cache.Hits, len(ids)-1)
	}
	if met.Cost.Pops == 0 {
		t.Fatal("no pops accumulated in cost totals")
	}
	if met.QueueLatency.Count != int64(len(ids)) || met.ExecLatency.Count != int64(len(ids)) {
		t.Fatalf("latency counts = %d/%d, want %d", met.QueueLatency.Count, met.ExecLatency.Count, len(ids))
	}
}

// TestAdmissionControlQueueFull: with no workers draining, the queue-depth
// bound rejects the overflow submission with ErrQueueFull and counts it.
func TestAdmissionControlQueueFull(t *testing.T) {
	m, err := NewManager(Options{startPaused: true, QueueDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(testSpec("mis", "sequential")); err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
	}
	if _, err := m.Submit(testSpec("mis", "sequential")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission returned %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().Jobs.Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// A forced close cancels the still-queued jobs rather than leaving them
	// queued forever (no workers will ever drain them).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Close(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("forced close returned %v", err)
	}
	for id := int64(1); id <= 3; id++ {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Fatalf("job %d left in state %q after forced close", id, st.State)
		}
	}
	if got := m.Metrics().Jobs.Canceled; got != 3 {
		t.Fatalf("canceled counter = %d, want 3", got)
	}
}

// TestSubmitValidation: malformed specs never enter the queue.
func TestSubmitValidation(t *testing.T) {
	m, err := NewManager(Options{startPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m.Close(ctx)
	}()

	cases := map[string]func(*JobSpec){
		"missing workload":  func(s *JobSpec) { s.Workload = "" },
		"unknown workload":  func(s *JobSpec) { s.Workload = "galactic" },
		"unknown mode":      func(s *JobSpec) { s.Mode = "quantum" },
		"zero k":            func(s *JobSpec) { s.K = 0 },
		"negative threads":  func(s *JobSpec) { s.Threads = -1 },
		"negative batch":    func(s *JobSpec) { s.Batch = -1 },
		"zero vertices":     func(s *JobSpec) { s.Graph.N = 0 },
		"huge graph":        func(s *JobSpec) { s.Graph.N = MaxGraphVertices + 1 },
		"huge edge target":  func(s *JobSpec) { s.Graph.Edges = MaxGraphEdges + 1 },
		"unknown model":     func(s *JobSpec) { s.Graph.Model = "hypercube" },
		"bad exponent":      func(s *JobSpec) { s.Graph.Model = ModelPowerLaw; s.Graph.Exponent = 0.5 },
		"negative tol":      func(s *JobSpec) { s.Tolerance = -1 },
		"damping too large": func(s *JobSpec) { s.Damping = 1.5 },
		"bad source":        func(s *JobSpec) { s.Source = -2 },
	}
	for name, mutate := range cases {
		spec := testSpec("mis", "sequential")
		mutate(&spec)
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if got := m.Metrics().Jobs.Submitted; got != 0 {
		t.Fatalf("%d invalid submissions entered the queue", got)
	}
}

// TestGracefulDrainRunsQueuedJobs: Close with a live context lets the
// workers run every queued job to completion, and the worker goroutines all
// exit (checked against the pre-manager goroutine count).
func TestGracefulDrainRunsQueuedJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := NewManager(Options{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 8; i++ {
		spec := testSpec("mis", "concurrent")
		spec.Priority = uint32(i)
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d ended %q after graceful drain: %s", id, st.State, st.Error)
		}
	}
	// Submissions after Close are rejected.
	if _, err := m.Submit(testSpec("mis", "sequential")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close submission returned %v, want ErrDraining", err)
	}
	waitForGoroutines(t, before)
}

// TestForcedDrainAbortsInFlight: a Close whose context expires immediately
// cancels queued jobs and aborts in-flight concurrent executions; nothing
// is left queued or running and the workers exit.
func TestForcedDrainAbortsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := NewManager(Options{Workers: 1, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	// A somewhat larger instance so a run is still in flight when the
	// forced close lands; batch size 1 maximizes abort opportunities.
	var ids []int64
	for i := 0; i < 6; i++ {
		spec := testSpec("pagerank", "concurrent")
		spec.Graph = GraphSpec{Model: ModelGNP, N: 20_000, Edges: 80_000, Seed: 9}
		spec.Batch = 1
		spec.Tolerance = 1e-10
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	closeErr := m.Close(ctx)
	if closeErr == nil {
		t.Log("drain finished inside the grace period; nothing was aborted")
	} else if !errors.Is(closeErr, context.DeadlineExceeded) {
		t.Fatalf("forced close returned %v", closeErr)
	}
	states := map[JobState]int{}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateQueued || st.State == StateRunning {
			t.Fatalf("job %d still %q after forced close", id, st.State)
		}
		if st.State == StateFailed {
			t.Fatalf("job %d failed: %s", id, st.Error)
		}
		states[st.State]++
	}
	if closeErr != nil && states[StateCanceled] == 0 {
		t.Fatalf("forced close canceled nothing: %v", states)
	}
	waitForGoroutines(t, before)
}

// TestJobRetentionBound: finished jobs beyond RetainJobs are forgotten
// oldest-first, and their status queries report ErrUnknownJob.
func TestJobRetentionBound(t *testing.T) {
	m, err := NewManager(Options{Workers: 1, RetainJobs: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var ids []int64
	for i := 0; i < 8; i++ {
		st, err := m.Submit(testSpec("mis", "sequential"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		func() {
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				st, err := m.Status(id)
				if errors.Is(err, ErrUnknownJob) {
					return // already evicted; that's fine
				}
				if err != nil {
					t.Fatal(err)
				}
				if st.State == StateDone {
					return
				}
				time.Sleep(time.Millisecond)
			}
			t.Fatalf("job %d never finished", id)
		}()
	}
	known := 0
	for _, id := range ids {
		if _, err := m.Status(id); err == nil {
			known++
		}
	}
	if known != 4 {
		t.Fatalf("%d finished jobs retained, want 4", known)
	}
	// The oldest ids must be the forgotten ones.
	if _, err := m.Status(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job still known: %v", err)
	}
	if _, err := m.Status(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job forgotten: %v", err)
	}
}

// TestManagerRejectsBadOptions covers constructor validation.
func TestManagerRejectsBadOptions(t *testing.T) {
	if _, err := NewManager(Options{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewManager(Options{QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
	if _, err := NewManager(Options{JobSched: "mystery"}); err == nil {
		t.Fatal("unknown job scheduler accepted")
	}
	if _, err := NewManager(Options{JobSchedK: -2}); err == nil {
		t.Fatal("negative job scheduler k accepted")
	}
}

// TestExactJobSchedZeroRankError: with the exact job scheduler every
// dispatch has rank 1 — observed rank error identically zero.
func TestExactJobSchedZeroRankError(t *testing.T) {
	m, err := NewManager(Options{Workers: 1, JobSched: JobSchedExact, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	for i := 0; i < 12; i++ {
		spec := testSpec("mis", "sequential")
		spec.Priority = uint32((i * 37) % 11)
		if _, err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	met := m.Metrics()
	if met.RankError.Count != 12 {
		t.Fatalf("dispatch count = %d, want 12", met.RankError.Count)
	}
	if met.RankError.Mean != 0 || met.RankError.Max != 0 {
		t.Fatalf("exact scheduler observed rank error mean=%v max=%d", met.RankError.Mean, met.RankError.Max)
	}
}

// waitForGoroutines polls until the goroutine count returns to (or below)
// the baseline, tolerating the runtime's own background goroutines.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
