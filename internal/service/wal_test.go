package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"relaxsched/internal/wal"
)

// walManager builds a manager logging to dir with the given extra options.
func walManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	opts.WALDir = dir
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestManagerWALReplayAfterAbandonedLog simulates a crash by building the
// log directly (as a crashed process would have left it) and booting a
// manager over it: unfinished jobs must re-enter the queue at their
// original priority and run to completion, terminal jobs must come back
// queryable without re-running.
func TestManagerWALReplayAfterAbandonedLog(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("mis", "sequential")
	spec.Priority = 7
	if err := w.AppendAccepted(1, spec); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAccepted(2, testSpec("pagerank", "relaxed")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompleted(2, wal.OutcomeDone); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAccepted(3, testSpec("sssp", "sequential")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompleted(3, wal.OutcomeFailed); err != nil {
		t.Fatal(err)
	}
	// No Close: a SIGKILLed process never closes its log. The records are
	// all fsynced, which is exactly the durable state a crash leaves.

	m := walManager(t, dir, Options{})
	defer m.Close(context.Background())

	// Job 1 had no terminal mark: it must replay, run and finish.
	st := waitJob(t, m, 1)
	if st.State != StateDone {
		t.Fatalf("replayed job 1 state = %q (err %q), want done", st.State, st.Error)
	}
	if !st.Recovered {
		t.Fatal("replayed job 1 not flagged recovered")
	}
	if st.Spec.Priority != 7 || st.Spec.Workload != "mis" {
		t.Fatalf("replayed job 1 lost its spec: %+v", st.Spec)
	}

	// Jobs 2 and 3 were terminal before the "crash": queryable, not re-run.
	st2, err := m.Status(2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Recovered || st2.Result != nil {
		t.Fatalf("recovered done job 2 = state %q recovered %v result %v", st2.State, st2.Recovered, st2.Result)
	}
	st3, err := m.Status(3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateFailed || !st3.Recovered {
		t.Fatalf("recovered failed job 3 = state %q recovered %v", st3.State, st3.Recovered)
	}

	// Id assignment resumes above the replayed ids.
	st4, err := m.Submit(testSpec("mis", "sequential"))
	if err != nil {
		t.Fatal(err)
	}
	if st4.ID != 4 {
		t.Fatalf("first new id after replay = %d, want 4", st4.ID)
	}
	if w := m.Metrics().WAL; w == nil || w.ReplayedJobs != 1 {
		t.Fatalf("metrics WAL section = %+v, want 1 replayed job", w)
	}
}

// TestManagerWALDrainLeavesNothingToReplay checks the clean-shutdown
// guarantee: after a graceful Close every accepted job is durably
// terminal, so the next boot replays nothing.
func TestManagerWALDrainLeavesNothingToReplay(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, dir, Options{})
	var ids []int64
	for i := 0; i < 6; i++ {
		st, err := m.Submit(testSpec("mis", "sequential"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitJob(t, m, id)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2 := walManager(t, dir, Options{})
	defer m2.Close(context.Background())
	mt := m2.Metrics()
	if mt.WAL == nil || mt.WAL.ReplayedJobs != 0 {
		t.Fatalf("WAL section after clean drain = %+v, want 0 replayed", mt.WAL)
	}
	if mt.Jobs.Queued != 0 || mt.Jobs.Running != 0 {
		t.Fatalf("jobs pending after clean-drain reboot: %+v", mt.Jobs)
	}
	// Each finished job's done mark survived: all still queryable as done.
	for _, id := range ids {
		st, err := m2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || !st.Recovered {
			t.Fatalf("job %d after reboot = state %q recovered %v", id, st.State, st.Recovered)
		}
	}
}

// TestManagerWALForcedDrainCancelsDurably checks the forced-drain path:
// jobs still queued when the drain deadline fires are marked canceled in
// the log, so a reboot does not resurrect work the operator discarded.
func TestManagerWALForcedDrainCancelsDurably(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, dir, Options{startPaused: true})
	var ids []int64
	for i := 0; i < 4; i++ {
		st, err := m.Submit(testSpec("mis", "sequential"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// No workers: the queue cannot drain, so Close's cleanup loop cancels
	// every still-queued job (the expired context keeps it from waiting).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m.Close(ctx)

	m2 := walManager(t, dir, Options{})
	defer m2.Close(context.Background())
	if w := m2.Metrics().WAL; w == nil || w.ReplayedJobs != 0 {
		t.Fatalf("replayed after forced drain = %+v, want 0", w)
	}
	for _, id := range ids {
		st, err := m2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled || !st.Recovered {
			t.Fatalf("job %d after forced-drain reboot = state %q recovered %v", id, st.State, st.Recovered)
		}
	}
}

// TestManagerWALForcedDrainSurfacesMarkFailure pins the other half of the
// forced-drain contract: when the log cannot record the cancellations,
// Close must surface the failure and must NOT expose the jobs as canceled
// — leaving them queued matches what the next boot does (replay and run
// them), whereas a visible "canceled" would promise the opposite.
func TestManagerWALForcedDrainSurfacesMarkFailure(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, dir, Options{startPaused: true})
	var ids []int64
	for i := 0; i < 3; i++ {
		st, err := m.Submit(testSpec("mis", "sequential"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Seal the log out from under the manager: every further append fails,
	// which is observationally the poisoned-log state Close must survive.
	if err := m.wlog.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.Close(ctx)
	if err == nil || !strings.Contains(err.Error(), "drain cancellations") {
		t.Fatalf("Close error = %v, want surfaced drain-cancellation failure", err)
	}
	for _, id := range ids {
		st, serr := m.Status(id)
		if serr != nil {
			t.Fatal(serr)
		}
		if st.State != StateQueued {
			t.Fatalf("job %d state = %q after unrecordable cancel, want queued", id, st.State)
		}
	}
	// The next boot keeps the queued promise: all three replay.
	m2 := walManager(t, dir, Options{})
	defer m2.Close(context.Background())
	if w := m2.Metrics().WAL; w == nil || w.ReplayedJobs != int64(len(ids)) {
		t.Fatalf("WAL after reboot = %+v, want %d replayed", w, len(ids))
	}
}

// TestManagerWALSubmitRacingDrain pins the reserve-pattern edge: a submit
// whose accept record is syncing when the drain begins must be rejected
// with ErrDraining AND durably canceled, so the next boot does not replay
// a job whose submitter was told no.
func TestManagerWALSubmitRacingDrain(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, dir, Options{startPaused: true})
	// Deterministic interleaving is not available from outside the fsync,
	// so drive the race many times: BeginDrain concurrent with Submit.
	done := make(chan error, 1)
	go func() {
		_, err := m.Submit(testSpec("mis", "sequential"))
		done <- err
	}()
	time.Sleep(time.Millisecond)
	m.BeginDrain()
	err := <-done
	if err != nil && !errors.Is(err, ErrDraining) {
		t.Fatalf("racing submit err = %v, want nil or ErrDraining", err)
	}
	accepted := err == nil
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m.Close(ctx)

	m2 := walManager(t, dir, Options{startPaused: true})
	replayed := m2.Metrics().WAL.ReplayedJobs
	if accepted && replayed != 0 {
		// The accepted job was still queued at the forced close, which
		// cancels durably — nothing may replay.
		t.Fatalf("accepted-then-canceled job replayed: %d", replayed)
	}
	if !accepted && replayed != 0 {
		t.Fatalf("job rejected with ErrDraining replayed anyway: %d", replayed)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_ = m2.Close(ctx2)
}

// TestManagerWALConcurrentSubmitters floods the log from concurrent
// submitters and checks the accounting holds up: every accept and every
// terminal mark appended, fsyncs never exceeding appends. (The strict
// batched-below-appends property is pinned deterministically in
// internal/wal, where the sync can be slowed; on a fast filesystem real
// syncs can outrun the submitters here.)
func TestManagerWALConcurrentSubmitters(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, dir, Options{Workers: 4, QueueDepth: 1024})
	defer m.Close(context.Background())
	const submitters, per = 8, 8
	errs := make(chan error, submitters)
	ids := make(chan int64, submitters*per)
	for g := 0; g < submitters; g++ {
		go func() {
			for i := 0; i < per; i++ {
				st, err := m.Submit(testSpec("mis", "sequential"))
				if err != nil {
					errs <- err
					return
				}
				ids <- st.ID
			}
			errs <- nil
		}()
	}
	for g := 0; g < submitters; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(ids)
	for id := range ids {
		waitJob(t, m, id)
	}
	w := m.Metrics().WAL
	if w == nil {
		t.Fatal("no WAL metrics section")
	}
	// submitters*per accepts + as many terminal marks.
	if want := int64(2 * submitters * per); w.Appends != want {
		t.Fatalf("appends = %d, want %d", w.Appends, want)
	}
	if w.Fsyncs == 0 || w.Fsyncs > w.Appends {
		t.Fatalf("fsyncs = %d with %d appends", w.Fsyncs, w.Appends)
	}
}
