package service

import "relaxsched/internal/api"

// The wire types this package defined before the v1 API redesign now live
// in internal/api, shared verbatim by relaxd, relaxload and the relaxgw
// gateway. The aliases below keep in-process callers source-compatible;
// new code should import internal/api directly.
type (
	// JobState is the lifecycle state of a submitted job.
	JobState = api.JobState
	// JobSpec is a job submission; see api.JobSpec.
	JobSpec = api.JobSpec
	// JobResult is the outcome of a finished job.
	JobResult = api.JobResult
	// JobStatus is the externally visible state of a job.
	JobStatus = api.JobStatus
	// GraphSpec is the canonical description of a generated input graph.
	GraphSpec = api.GraphSpec
	// WorkloadInfo is one row of the workload-listing endpoint.
	WorkloadInfo = api.WorkloadInfo
	// Metrics is the GET /v1/metrics snapshot.
	Metrics = api.Metrics
	// JobCounts breaks jobs down by outcome.
	JobCounts = api.JobCounts
	// CacheStats is a snapshot of the graph cache's counters.
	CacheStats = api.CacheStats
	// CostTotals accumulates the work accounting of finished jobs.
	CostTotals = api.CostTotals
	// RankErrorStats summarizes observed job rank error.
	RankErrorStats = api.RankErrorStats
	// LatencySummary summarizes a latency distribution in milliseconds.
	LatencySummary = api.LatencySummary
	// LatencyHistogram is a log-bucketed latency distribution.
	LatencyHistogram = api.LatencyHistogram
	// JobTrace is one job's lifecycle span timeline.
	JobTrace = api.JobTrace
	// TraceSpan is one phase of a job's lifecycle.
	TraceSpan = api.TraceSpan
	// ControllerStats is the adaptive-controller section of Metrics.
	ControllerStats = api.ControllerStats
	// WALStats is the write-ahead-log section of Metrics.
	WALStats = api.WALStats
)

// Job lifecycle states; see the api.State* constants.
const (
	StateQueued   = api.StateQueued
	StateRunning  = api.StateRunning
	StateDone     = api.StateDone
	StateFailed   = api.StateFailed
	StateCanceled = api.StateCanceled
)

// Graph generator models and per-job size bounds; see internal/api.
const (
	ModelGNP         = api.ModelGNP
	ModelPowerLaw    = api.ModelPowerLaw
	ModelGrid        = api.ModelGrid
	MaxGraphVertices = api.MaxGraphVertices
	MaxGraphEdges    = api.MaxGraphEdges
)
