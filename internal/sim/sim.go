// Package sim is the sequential simulation harness behind the paper's
// synthetic experiments: it measures the number of extra scheduler iterations
// ("failed deletes") that relaxation causes when executing an iterative
// algorithm through the framework, exactly the quantity reported in Table 1
// and bounded by Theorems 1 and 2.
//
// A simulation cell fixes an algorithm, an input size (|V|, |E|), a scheduler
// family, a relaxation factor k and a number of trials; each trial draws a
// fresh random input and priority permutation, runs the relaxed framework,
// and records the extra iterations. Sweeps over k, |V| and |E| reproduce
// Table 1 (MIS with a MultiQueue) and validate the theorems' scaling claims
// for the other algorithms.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"relaxsched/internal/algos/coloring"
	"relaxsched/internal/algos/listcontract"
	"relaxsched/internal/algos/matching"
	"relaxsched/internal/algos/mis"
	"relaxsched/internal/algos/shuffle"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/kbounded"
	"relaxsched/internal/sched/multiqueue"
	"relaxsched/internal/sched/spraylist"
	"relaxsched/internal/sched/topk"
	"relaxsched/internal/stats"
)

// Algorithm selects which iterative algorithm a simulation cell runs.
type Algorithm string

// Supported algorithms.
const (
	AlgMIS          Algorithm = "mis"
	AlgMatching     Algorithm = "matching"
	AlgColoring     Algorithm = "coloring"
	AlgListContract Algorithm = "listcontract"
	AlgShuffle      Algorithm = "shuffle"
)

// Algorithms lists the supported algorithms in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgMIS, AlgMatching, AlgColoring, AlgListContract, AlgShuffle}
}

// Scheduler selects which relaxed scheduler family a simulation cell uses.
type Scheduler string

// Supported scheduler families.
const (
	SchedMultiQueue Scheduler = "multiqueue"
	SchedTopK       Scheduler = "topk"
	SchedSprayList  Scheduler = "spraylist"
	SchedKBounded   Scheduler = "kbounded"
)

// Schedulers lists the supported scheduler families in a stable order.
func Schedulers() []Scheduler {
	return []Scheduler{SchedMultiQueue, SchedTopK, SchedSprayList, SchedKBounded}
}

// Config describes one simulation cell.
type Config struct {
	// Algorithm to execute (default AlgMIS).
	Algorithm Algorithm
	// Scheduler family to use (default SchedMultiQueue).
	Scheduler Scheduler
	// Vertices is |V| of the random input graph (or the number of list nodes
	// / shuffle iterations for the non-graph algorithms).
	Vertices int
	// Edges is |E| of the random input graph. It is ignored by the list
	// contraction and shuffle workloads, whose dependency structure is
	// inherently sparse.
	Edges int64
	// K is the relaxation factor: the number of MultiQueue sub-queues, the
	// top-k width, the spray parameter, or the k-bounded window.
	K int
	// Trials is the number of independent repetitions (fresh input and
	// permutation each time). Default 1.
	Trials int
	// Seed makes the cell reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgMIS
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedMultiQueue
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
	if c.K < 1 {
		c.K = 1
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Algorithm {
	case AlgMIS, AlgMatching, AlgColoring, AlgListContract, AlgShuffle:
	default:
		return fmt.Errorf("sim: unknown algorithm %q", c.Algorithm)
	}
	switch c.Scheduler {
	case SchedMultiQueue, SchedTopK, SchedSprayList, SchedKBounded:
	default:
		return fmt.Errorf("sim: unknown scheduler %q", c.Scheduler)
	}
	if c.Vertices <= 0 {
		return fmt.Errorf("sim: vertex count must be positive, got %d", c.Vertices)
	}
	maxEdges := int64(c.Vertices) * int64(c.Vertices-1) / 2
	if needsGraph(c.Algorithm) && (c.Edges < 0 || c.Edges > maxEdges) {
		return fmt.Errorf("sim: edge count %d invalid for %d vertices", c.Edges, c.Vertices)
	}
	return nil
}

func needsGraph(a Algorithm) bool {
	return a == AlgMIS || a == AlgMatching || a == AlgColoring
}

// CellResult is the outcome of one simulation cell.
type CellResult struct {
	Config Config
	// ExtraIterations summarizes iterations beyond the unavoidable one per
	// task across trials — the quantity in Table 1.
	ExtraIterations stats.Summary
	// FailedDeletes summarizes re-insertions due to blocked tasks.
	FailedDeletes stats.Summary
	// DeadSkips summarizes deliveries of dead tasks (MIS/matching only).
	DeadSkips stats.Summary
	// Tasks is the number of framework tasks per trial (|V| for vertex
	// algorithms, |E| for matching).
	Tasks int
}

// schedulerFactory builds the sequential-model scheduler for a cell.
func schedulerFactory(kind Scheduler, k int, r *rng.Rand) sched.Factory {
	switch kind {
	case SchedTopK:
		return topk.Factory(k, r)
	case SchedSprayList:
		return spraylist.Factory(k, r)
	case SchedKBounded:
		return kbounded.Factory(k)
	default:
		return multiqueue.SequentialFactory(k, r)
	}
}

// RunCell runs one simulation cell and returns its aggregated result.
func RunCell(cfg Config) (CellResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return CellResult{}, err
	}
	r := rng.New(cfg.Seed ^ 0x5eed5eed5eed5eed)
	factory := schedulerFactory(cfg.Scheduler, cfg.K, r.Fork())

	extras := make([]float64, 0, cfg.Trials)
	failed := make([]float64, 0, cfg.Trials)
	skips := make([]float64, 0, cfg.Trials)
	tasks := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		res, numTasks, err := runTrial(cfg, r, factory)
		if err != nil {
			return CellResult{}, fmt.Errorf("sim: trial %d: %w", trial, err)
		}
		tasks = numTasks
		extras = append(extras, float64(res.ExtraIterations()))
		failed = append(failed, float64(res.FailedDeletes))
		skips = append(skips, float64(res.DeadSkips))
	}
	return CellResult{
		Config:          cfg,
		ExtraIterations: stats.Summarize(extras),
		FailedDeletes:   stats.Summarize(failed),
		DeadSkips:       stats.Summarize(skips),
		Tasks:           tasks,
	}, nil
}

// runTrial draws a fresh input and permutation and executes one relaxed run.
func runTrial(cfg Config, r *rng.Rand, factory sched.Factory) (core.Result, int, error) {
	switch cfg.Algorithm {
	case AlgListContract:
		n := cfg.Vertices
		p := listcontract.NewRandomList(n, r)
		labels := core.RandomLabels(n, r)
		_, _, res, err := listcontract.RunRelaxed(p, labels, factory(n))
		return res, n, err
	case AlgShuffle:
		n := cfg.Vertices
		targets := shuffle.RandomTargets(n, r)
		_, res, err := shuffle.RunRelaxed(targets, factory(n))
		return res, n, err
	}

	g, err := graph.GNM(cfg.Vertices, cfg.Edges, r)
	if err != nil {
		return core.Result{}, 0, err
	}
	switch cfg.Algorithm {
	case AlgMIS:
		labels := core.RandomLabels(g.NumVertices(), r)
		_, res, err := mis.RunRelaxed(g, labels, factory(g.NumVertices()))
		return res, g.NumVertices(), err
	case AlgMatching:
		m := int(g.NumEdges())
		labels := core.RandomLabels(m, r)
		_, res, err := matching.RunRelaxed(g, labels, factory(m))
		return res, m, err
	case AlgColoring:
		labels := core.RandomLabels(g.NumVertices(), r)
		_, res, err := coloring.RunRelaxed(g, labels, factory(g.NumVertices()))
		return res, g.NumVertices(), err
	default:
		return core.Result{}, 0, fmt.Errorf("sim: unknown algorithm %q", cfg.Algorithm)
	}
}

// Size is an input-size cell of a sweep.
type Size struct {
	Vertices int
	Edges    int64
}

// Table1Sizes returns the |V| x |E| grid used by the paper's Table 1.
func Table1Sizes() []Size {
	return []Size{
		{Vertices: 1000, Edges: 10000},
		{Vertices: 1000, Edges: 30000},
		{Vertices: 1000, Edges: 100000},
		{Vertices: 10000, Edges: 10000},
		{Vertices: 10000, Edges: 30000},
		{Vertices: 10000, Edges: 100000},
	}
}

// Table1Ks returns the relaxation factors of the paper's Table 1.
func Table1Ks() []int { return []int{4, 8, 16, 32, 64} }

// Sweep runs a full grid of cells (every size crossed with every k) for one
// algorithm/scheduler pair.
func Sweep(alg Algorithm, schedKind Scheduler, sizes []Size, ks []int, trials int, seed uint64) ([]CellResult, error) {
	results := make([]CellResult, 0, len(sizes)*len(ks))
	for _, size := range sizes {
		for _, k := range ks {
			cell, err := RunCell(Config{
				Algorithm: alg,
				Scheduler: schedKind,
				Vertices:  size.Vertices,
				Edges:     size.Edges,
				K:         k,
				Trials:    trials,
				Seed:      seed ^ uint64(size.Vertices)<<32 ^ uint64(size.Edges) ^ uint64(k)<<16,
			})
			if err != nil {
				return nil, err
			}
			results = append(results, cell)
		}
	}
	return results, nil
}

// FormatTable renders sweep results in the layout of the paper's Table 1:
// one row per (|V|, |E|) pair, one column per relaxation factor k, each cell
// holding the mean number of extra iterations.
func FormatTable(results []CellResult) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	ks := make([]int, 0)
	seenK := make(map[int]bool)
	type rowKey struct {
		v int
		e int64
	}
	rowOrder := make([]rowKey, 0)
	seenRow := make(map[rowKey]bool)
	cells := make(map[rowKey]map[int]float64)
	for _, res := range results {
		k := res.Config.K
		if !seenK[k] {
			seenK[k] = true
			ks = append(ks, k)
		}
		rk := rowKey{v: res.Config.Vertices, e: res.Config.Edges}
		if !seenRow[rk] {
			seenRow[rk] = true
			rowOrder = append(rowOrder, rk)
		}
		if cells[rk] == nil {
			cells[rk] = make(map[int]float64)
		}
		cells[rk][k] = res.ExtraIterations.Mean
	}
	sort.Ints(ks)
	sort.Slice(rowOrder, func(i, j int) bool {
		if rowOrder[i].v != rowOrder[j].v {
			return rowOrder[i].v < rowOrder[j].v
		}
		return rowOrder[i].e < rowOrder[j].e
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s", "|V|", "|E|")
	for _, k := range ks {
		fmt.Fprintf(&b, " k=%-10d", k)
	}
	b.WriteString("\n")
	for _, rk := range rowOrder {
		fmt.Fprintf(&b, "%-10d %-12d", rk.v, rk.e)
		for _, k := range ks {
			if val, ok := cells[rk][k]; ok {
				fmt.Fprintf(&b, " %-12.1f", val)
			} else {
				fmt.Fprintf(&b, " %-12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
