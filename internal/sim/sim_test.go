package sim

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults applied", Config{Vertices: 100, Edges: 200}, true},
		{"explicit mis multiqueue", Config{Algorithm: AlgMIS, Scheduler: SchedMultiQueue, Vertices: 50, Edges: 100, K: 4}, true},
		{"listcontract ignores edges", Config{Algorithm: AlgListContract, Vertices: 50, Edges: -5}, true},
		{"unknown algorithm", Config{Algorithm: "foo", Vertices: 10, Edges: 5}, false},
		{"unknown scheduler", Config{Scheduler: "bar", Vertices: 10, Edges: 5}, false},
		{"zero vertices", Config{Vertices: 0, Edges: 0}, false},
		{"too many edges", Config{Vertices: 10, Edges: 100}, false},
		{"negative edges graph alg", Config{Algorithm: AlgColoring, Vertices: 10, Edges: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestEnumerations(t *testing.T) {
	if len(Algorithms()) != 5 {
		t.Fatalf("Algorithms() has %d entries", len(Algorithms()))
	}
	if len(Schedulers()) != 4 {
		t.Fatalf("Schedulers() has %d entries", len(Schedulers()))
	}
	if len(Table1Sizes()) != 6 || len(Table1Ks()) != 5 {
		t.Fatal("Table 1 grid dimensions wrong")
	}
}

func TestRunCellMISProducesSaneNumbers(t *testing.T) {
	cell, err := RunCell(Config{
		Algorithm: AlgMIS,
		Scheduler: SchedMultiQueue,
		Vertices:  1000,
		Edges:     10000,
		K:         8,
		Trials:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Tasks != 1000 {
		t.Fatalf("Tasks = %d, want 1000", cell.Tasks)
	}
	if cell.ExtraIterations.N != 2 {
		t.Fatalf("trials recorded = %d, want 2", cell.ExtraIterations.N)
	}
	if cell.ExtraIterations.Mean < 0 {
		t.Fatalf("negative extra iterations %v", cell.ExtraIterations.Mean)
	}
	// Theorem 2: for MIS the overhead is poly(k), so it must stay well below
	// n even for this moderately dense graph.
	if cell.ExtraIterations.Mean > 1000 {
		t.Fatalf("extra iterations %.1f exceed n", cell.ExtraIterations.Mean)
	}
}

func TestRunCellAllAlgorithmsAndSchedulers(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, sk := range Schedulers() {
			cfg := Config{
				Algorithm: alg,
				Scheduler: sk,
				Vertices:  200,
				Edges:     600,
				K:         8,
				Trials:    1,
				Seed:      7,
			}
			cell, err := RunCell(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, sk, err)
			}
			if cell.Tasks <= 0 {
				t.Fatalf("%s/%s: no tasks recorded", alg, sk)
			}
			if cell.ExtraIterations.Mean < 0 {
				t.Fatalf("%s/%s: negative extra iterations", alg, sk)
			}
		}
	}
}

func TestRunCellExactWhenKOne(t *testing.T) {
	// With k = 1 every scheduler family degenerates to an exact queue and
	// there must be no extra iterations at all.
	for _, sk := range Schedulers() {
		cell, err := RunCell(Config{
			Algorithm: AlgColoring,
			Scheduler: sk,
			Vertices:  300,
			Edges:     900,
			K:         1,
			Trials:    1,
			Seed:      3,
		})
		if err != nil {
			t.Fatalf("%s: %v", sk, err)
		}
		if cell.ExtraIterations.Mean != 0 {
			t.Fatalf("%s: k=1 produced %.1f extra iterations", sk, cell.ExtraIterations.Mean)
		}
	}
}

func TestRunCellRejectsInvalidConfig(t *testing.T) {
	if _, err := RunCell(Config{Vertices: -1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSweepAndFormatTable(t *testing.T) {
	sizes := []Size{{Vertices: 200, Edges: 600}, {Vertices: 400, Edges: 600}}
	ks := []int{2, 8}
	results, err := Sweep(AlgMIS, SchedMultiQueue, sizes, ks, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("sweep produced %d cells, want 4", len(results))
	}
	table := FormatTable(results)
	for _, want := range []string{"k=2", "k=8", "200", "400"} {
		if !strings.Contains(table, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, table)
		}
	}
	if FormatTable(nil) == "" {
		t.Fatal("FormatTable(nil) returned empty string")
	}
}

func TestMISOverheadScalesWithKNotN(t *testing.T) {
	// Theorem 2's headline: the MIS relaxation overhead does not grow with
	// the input size. Compare two graph sizes at fixed k; the larger graph's
	// overhead must not be dramatically larger (allow generous slack for
	// noise since these are single trials).
	small, err := RunCell(Config{Algorithm: AlgMIS, Vertices: 1000, Edges: 5000, K: 16, Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunCell(Config{Algorithm: AlgMIS, Vertices: 8000, Edges: 40000, K: 16, Trials: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if large.ExtraIterations.Mean > 8*(small.ExtraIterations.Mean+50) {
		t.Fatalf("MIS overhead grew with n: %.1f (n=1000) vs %.1f (n=8000)",
			small.ExtraIterations.Mean, large.ExtraIterations.Mean)
	}
}
