// Package stats provides the small set of summary statistics the simulation
// and benchmark harnesses need: means, standard deviations, extrema,
// percentiles, and multi-trial aggregation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrEmpty is returned by functions that cannot produce a meaningful result
// for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns ErrEmpty for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for an empty
// slice and an error for an out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary for xs. The zero Summary is returned for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	p50, _ := Percentile(xs, 50)
	p95, _ := Percentile(xs, 95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		P50:    p50,
		P95:    p95,
	}
}

// String formats the summary compactly for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f stddev=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Durations converts a slice of time.Duration to float64 seconds, the unit
// used by the benchmark reports.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Ints converts a slice of int64 counters (e.g. failed-delete counts) to
// float64 for summarization.
func Ints(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Accumulator computes running mean and variance using Welford's algorithm,
// so long simulations can aggregate millions of samples without storing them.
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (0 if no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running unbiased sample variance (0 if fewer than two
// samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the minimum sample added (0 if no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the maximum sample added (0 if no samples).
func (a *Accumulator) Max() float64 { return a.max }
