package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"relaxsched/internal/rng"
)

func approxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !approxEqual(got, tc.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic example is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !approxEqual(got, want, 1e-9) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !approxEqual(got, math.Sqrt(want), 1e-9) {
		t.Fatalf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance of empty = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Min(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Max(nil) error = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tc := range cases {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatalf("Percentile(%v) error: %v", tc.p, err)
		}
		if !approxEqual(got, tc.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Percentile(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("Percentile(-1) did not error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("Percentile(101) did not error")
	}
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Fatalf("Percentile of singleton = %v, %v", got, err)
	}
	// Percentile must not mutate the input.
	orig := []float64{5, 1, 3}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Fatalf("Percentile mutated input: %v", orig)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || !approxEqual(s.Mean, 5.5, 1e-9) || s.Min != 1 || s.Max != 10 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !approxEqual(s.P50, 5.5, 1e-9) {
		t.Fatalf("P50 = %v, want 5.5", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("String() returned empty")
	}
}

func TestDurationsAndInts(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if len(ds) != 2 || !approxEqual(ds[0], 1.0, 1e-12) || !approxEqual(ds[1], 0.5, 1e-12) {
		t.Fatalf("Durations = %v", ds)
	}
	is := Ints([]int64{3, -7, 0})
	if len(is) != 3 || is[0] != 3 || is[1] != -7 || is[2] != 0 {
		t.Fatalf("Ints = %v", is)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(500)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
			acc.Add(xs[i])
		}
		if acc.N() != int64(n) {
			return false
		}
		if !approxEqual(acc.Mean(), Mean(xs), 1e-8) {
			return false
		}
		if !approxEqual(acc.Variance(), Variance(xs), 1e-6) {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return acc.Min() == mn && acc.Max() == mx
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 || acc.StdDev() != 0 {
		t.Fatal("zero accumulator not all-zero")
	}
	acc.Add(7)
	if acc.N() != 1 || acc.Mean() != 7 || acc.Variance() != 0 || acc.Min() != 7 || acc.Max() != 7 {
		t.Fatalf("single-sample accumulator wrong: %+v", acc)
	}
}
