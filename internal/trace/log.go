package trace

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger from the shared
// -log-level / -log-format flag semantics: level is one of debug, info,
// warn, error and format is text or json. Both are case-insensitive; an
// unrecognized value is a flag error, reported rather than defaulted so a
// typo in a unit file fails loudly at boot.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// DiscardLogger returns a logger that drops everything; library code uses
// it when the caller passes no logger, so call sites never nil-check.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
