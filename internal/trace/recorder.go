package trace

import (
	"sync"
	"time"
)

// Span is one phase of a job's lifecycle. Offsets are nanoseconds since
// the timeline's Start, measured on the monotonic clock, so spans order
// and subtract correctly even across wall-clock adjustments. EndNanos is
// zero while the phase is still running; a terminal marker span has
// EndNanos == StartNanos.
type Span struct {
	// Name is the phase: accepted, wal-synced, queued, dispatched,
	// graph-build, cache-hit, executing, then a terminal marker (done,
	// failed, canceled, rejected).
	Name string `json:"name"`
	// StartNanos and EndNanos are monotonic offsets from the timeline
	// start.
	StartNanos int64 `json:"start_ns"`
	EndNanos   int64 `json:"end_ns,omitempty"`
	// Detail carries phase-specific context, e.g. the rank error observed
	// at dispatch ("rank=3 rank_err=2") or the failure message.
	Detail string `json:"detail,omitempty"`
}

// Timeline is one job's recorded lifecycle: its trace ID, the wall-clock
// anchor of offset zero, and the phase spans in order.
type Timeline struct {
	TraceID string
	JobID   int64
	Start   time.Time
	Spans   []Span
}

// maxDetailLen bounds a span detail so an arbitrarily long error message
// cannot grow the ring's memory footprint.
const maxDetailLen = 256

// Recorder keeps the last Capacity job timelines in a bounded ring:
// beginning timeline Capacity+1 evicts the oldest begun timeline,
// whatever state it is in. All methods are safe for concurrent use and
// take no locks beyond the recorder's own, so callers may invoke them
// while holding their own mutexes.
//
// Methods addressed at a job id that was never begun (or already evicted)
// are no-ops: recording must never fail the job it observes.
type Recorder struct {
	mu        sync.Mutex
	capacity  int
	timelines map[int64]*timeline
	order     []int64 // begun job ids, oldest first, for eviction
}

type timeline struct {
	traceID string
	start   time.Time
	spans   []Span
}

// DefaultCapacity is the timeline bound managers use when the caller does
// not choose one.
const DefaultCapacity = 4096

// NewRecorder returns a recorder bounded to capacity timelines
// (non-positive selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		capacity:  capacity,
		timelines: make(map[int64]*timeline),
	}
}

// Begin starts a job's timeline with an open "accepted" span. A second
// Begin for a live job id resets its timeline (job ids are unique in
// practice; the reset keeps the ring consistent if they are not).
func (r *Recorder) Begin(jobID int64, traceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, live := r.timelines[jobID]; !live {
		if len(r.order) >= r.capacity {
			evict := r.order[0]
			r.order = r.order[1:]
			delete(r.timelines, evict)
		}
		r.order = append(r.order, jobID)
	}
	r.timelines[jobID] = &timeline{
		traceID: traceID,
		start:   time.Now(),
		spans:   []Span{{Name: "accepted"}},
	}
}

// Next closes the job's open span and opens a new one named name.
func (r *Recorder) Next(jobID int64, name, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[jobID]
	if !ok {
		return
	}
	now := tl.now()
	tl.closeOpen(now)
	tl.spans = append(tl.spans, Span{Name: name, StartNanos: now, Detail: clipDetail(detail)})
}

// Amend rewrites the job's open span in place: a non-empty name renames
// it, a non-empty detail replaces its detail. It exists for phases whose
// identity is only known at completion — a graph fetch opens as
// "graph-build" and amends to "cache-hit" when the cache answered.
func (r *Recorder) Amend(jobID int64, name, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[jobID]
	if !ok || len(tl.spans) == 0 {
		return
	}
	open := &tl.spans[len(tl.spans)-1]
	if open.EndNanos != 0 {
		return
	}
	if name != "" {
		open.Name = name
	}
	if detail != "" {
		open.Detail = clipDetail(detail)
	}
}

// Finish closes the job's open span and appends a zero-length terminal
// marker span named name (done, failed, canceled, rejected). The timeline
// stays queryable until evicted by the ring bound.
func (r *Recorder) Finish(jobID int64, name, detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[jobID]
	if !ok {
		return
	}
	now := tl.now()
	tl.closeOpen(now)
	tl.spans = append(tl.spans, Span{Name: name, StartNanos: now, EndNanos: now, Detail: clipDetail(detail)})
}

// Get returns a copy of the job's timeline, or false when it was never
// begun or has been evicted.
func (r *Recorder) Get(jobID int64) (Timeline, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[jobID]
	if !ok {
		return Timeline{}, false
	}
	return Timeline{
		TraceID: tl.traceID,
		JobID:   jobID,
		Start:   tl.start,
		Spans:   append([]Span(nil), tl.spans...),
	}, true
}

// Len reports how many timelines the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.timelines)
}

// now returns the monotonic offset since the timeline start, clamped to a
// minimum of 1 so no later event shares offset 0 with the accepted span.
func (t *timeline) now() int64 {
	ns := time.Since(t.start).Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	return ns
}

// closeOpen closes the trailing span if it is still open.
func (t *timeline) closeOpen(now int64) {
	if len(t.spans) == 0 {
		return
	}
	open := &t.spans[len(t.spans)-1]
	if open.EndNanos == 0 {
		open.EndNanos = now
	}
}

func clipDetail(s string) string {
	if len(s) > maxDetailLen {
		return s[:maxDetailLen]
	}
	return s
}
