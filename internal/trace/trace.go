// Package trace is the request-correlation and job-lifecycle substrate of
// the relaxd/relaxgw observability layer.
//
// It has three small parts, deliberately dependency-free so every layer of
// the system can import it:
//
//   - Trace IDs: an opaque hex ID minted at the first process that touches
//     a request (gateway or node), carried on the wire in the
//     X-Relax-Trace-Id header, threaded through context.Context, echoed in
//     every error envelope, and stamped on every job-scoped log line — so
//     one slow request is greppable across the whole fleet.
//   - The Recorder: a bounded per-manager ring of per-job span timelines
//     (accepted → wal-synced → queued → dispatched → graph-build/cache-hit
//     → executing → terminal), recorded with monotonic timestamps and
//     served by GET /v1/jobs/{id}/trace.
//   - NewLogger: the shared -log-level/-log-format flag semantics for the
//     daemons' structured (log/slog) logging.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Header is the HTTP header carrying a request's trace ID between the
// gateway, the backends and back to the client. Handlers mint an ID when
// the header is absent, echo it on every response, and clients forward it
// on every outgoing request whose context carries one.
const Header = "X-Relax-Trace-Id"

// MaxIDLen bounds the trace IDs a server accepts from the wire; longer
// values are replaced with a freshly minted ID rather than stored or
// echoed, so a client cannot grow server-side buffers or log lines with an
// unbounded token.
const MaxIDLen = 64

// fallbackSeq numbers IDs when the system randomness source fails; the IDs
// are then unique within the process, which is all correlation needs.
var fallbackSeq atomic.Uint64

// NewID mints a new 16-hex-character trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the trace ID in a context.Context.
type ctxKey struct{}

// ContextWithID returns ctx carrying the trace ID.
func ContextWithID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// IDFromContext returns the trace ID carried by ctx, or "" when there is
// none.
func IDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// SanitizeID validates an ID taken from the wire: a non-empty ID within
// MaxIDLen passes through, anything else is replaced with a fresh ID.
func SanitizeID(id string) string {
	if id == "" || len(id) > MaxIDLen {
		return NewID()
	}
	return id
}
