package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	hex := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if !hex.MatchString(id) {
			t.Fatalf("NewID() = %q, want 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := IDFromContext(context.Background()); got != "" {
		t.Fatalf("IDFromContext(empty ctx) = %q, want empty", got)
	}
	ctx := ContextWithID(context.Background(), "abc123")
	if got := IDFromContext(ctx); got != "abc123" {
		t.Fatalf("IDFromContext = %q, want abc123", got)
	}
}

func TestSanitizeID(t *testing.T) {
	if got := SanitizeID("ok-id"); got != "ok-id" {
		t.Fatalf("SanitizeID(valid) = %q, want passthrough", got)
	}
	if got := SanitizeID(""); got == "" {
		t.Fatal("SanitizeID(empty) returned empty, want fresh ID")
	}
	long := strings.Repeat("x", MaxIDLen+1)
	if got := SanitizeID(long); got == long || got == "" {
		t.Fatalf("SanitizeID(overlong) = %q, want replacement ID", got)
	}
	if got := SanitizeID(strings.Repeat("y", MaxIDLen)); len(got) != MaxIDLen {
		t.Fatalf("SanitizeID(max-length) rejected a legal ID: %q", got)
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder(8)
	r.Begin(1, "tid-1")
	r.Next(1, "queued", "")
	r.Next(1, "dispatched", "rank_err=2")
	r.Amend(1, "", "rank_err=3")
	r.Next(1, "graph-build", "")
	r.Amend(1, "cache-hit", "")
	r.Next(1, "executing", "")
	r.Finish(1, "done", "")

	tl, ok := r.Get(1)
	if !ok {
		t.Fatal("Get(1) missing after full lifecycle")
	}
	if tl.TraceID != "tid-1" || tl.JobID != 1 {
		t.Fatalf("timeline identity = (%q, %d), want (tid-1, 1)", tl.TraceID, tl.JobID)
	}
	names := make([]string, len(tl.Spans))
	for i, s := range tl.Spans {
		names[i] = s.Name
	}
	want := []string{"accepted", "queued", "dispatched", "cache-hit", "executing", "done"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span names = %v, want %v", names, want)
	}
	// Amend replaced the dispatch detail in place.
	if tl.Spans[2].Detail != "rank_err=3" {
		t.Fatalf("amended dispatch detail = %q, want rank_err=3", tl.Spans[2].Detail)
	}
	// Offsets are monotone non-decreasing, every non-terminal span closed,
	// and the terminal marker has zero length.
	var prev int64
	for i, s := range tl.Spans {
		if s.StartNanos < prev {
			t.Fatalf("span %d starts at %d before previous offset %d", i, s.StartNanos, prev)
		}
		if s.EndNanos < s.StartNanos {
			t.Fatalf("span %d ends (%d) before it starts (%d)", i, s.EndNanos, s.StartNanos)
		}
		if s.EndNanos == 0 {
			t.Fatalf("span %d (%s) left open in a finished timeline", i, s.Name)
		}
		prev = s.StartNanos
	}
	last := tl.Spans[len(tl.Spans)-1]
	if last.EndNanos != last.StartNanos {
		t.Fatalf("terminal span has length %d, want 0", last.EndNanos-last.StartNanos)
	}
}

func TestRecorderOpenSpanVisible(t *testing.T) {
	r := NewRecorder(8)
	r.Begin(7, "tid-7")
	r.Next(7, "queued", "")
	tl, ok := r.Get(7)
	if !ok {
		t.Fatal("Get(7) missing for in-flight job")
	}
	if got := tl.Spans[len(tl.Spans)-1]; got.Name != "queued" || got.EndNanos != 0 {
		t.Fatalf("open span = %+v, want open queued span", got)
	}
}

func TestRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(3)
	for id := int64(1); id <= 5; id++ {
		r.Begin(id, fmt.Sprintf("tid-%d", id))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", r.Len())
	}
	for _, gone := range []int64{1, 2} {
		if _, ok := r.Get(gone); ok {
			t.Fatalf("job %d survived eviction", gone)
		}
	}
	for _, kept := range []int64{3, 4, 5} {
		if _, ok := r.Get(kept); !ok {
			t.Fatalf("job %d evicted while newer than capacity", kept)
		}
	}
}

func TestRecorderUnknownJobNoops(t *testing.T) {
	r := NewRecorder(2)
	// None of these may panic or create state.
	r.Next(99, "queued", "")
	r.Amend(99, "x", "y")
	r.Finish(99, "done", "")
	if _, ok := r.Get(99); ok {
		t.Fatal("no-op methods materialized a timeline")
	}
}

func TestRecorderGetReturnsCopy(t *testing.T) {
	r := NewRecorder(2)
	r.Begin(1, "t")
	tl, _ := r.Get(1)
	tl.Spans[0].Name = "mutated"
	again, _ := r.Get(1)
	if again.Spans[0].Name != "accepted" {
		t.Fatal("Get returned a view into recorder-owned memory")
	}
}

func TestRecorderDetailClipped(t *testing.T) {
	r := NewRecorder(2)
	r.Begin(1, "t")
	r.Next(1, "failed", strings.Repeat("e", maxDetailLen*4))
	tl, _ := r.Get(1)
	if got := len(tl.Spans[1].Detail); got != maxDetailLen {
		t.Fatalf("detail length = %d, want clipped to %d", got, maxDetailLen)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(w*1000 + i)
				r.Begin(id, NewID())
				r.Next(id, "queued", "")
				r.Finish(id, "done", "")
				r.Get(id)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want capacity 64 after overflow", r.Len())
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "job_id", 42, "trace_id", "abc")
	line := buf.String()
	if strings.Contains(line, "dropped") {
		t.Fatal("info line emitted at warn level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json format produced non-JSON line %q: %v", line, err)
	}
	if rec["msg"] != "kept" || rec["trace_id"] != "abc" {
		t.Fatalf("json record = %v, want msg=kept trace_id=abc", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "", "")
	if err != nil {
		t.Fatalf("NewLogger defaults: %v", err)
	}
	lg.Debug("dropped")
	lg.Info("kept")
	if out := buf.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("default level not info: %q", out)
	}

	if _, err := NewLogger(&buf, "verbose", "text"); err == nil {
		t.Fatal("NewLogger accepted bogus level")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("NewLogger accepted bogus format")
	}
}

func TestDiscardLogger(t *testing.T) {
	lg := DiscardLogger()
	lg.Error("nobody hears this") // must not panic
	if lg.Enabled(context.Background(), 12) {
		t.Fatal("discard logger claims to be enabled")
	}
}
