package wal

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"relaxsched/internal/api"
)

// FuzzWALDecode feeds arbitrary bytes to the record decoder (it must error,
// never panic or over-read) and, independently, derives a structured record
// from the same bytes to check that encode→decode is the identity.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segmentMagic))
	f.Add(AppendRecord(nil, Record{Kind: KindAccepted, ID: 1, Spec: api.DefaultJobSpec()}))
	f.Add(AppendRecord(nil, Record{Kind: KindCompleted, ID: 99, Outcome: OutcomeFailed}))
	f.Add(AppendRecord(nil, Record{Kind: KindCanceled, ID: -5}))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input: decode must return a record or an error — any
		// panic or runtime fault fails the fuzz run — and a successful
		// decode must consume within bounds and re-encode to the same bytes.
		rec, n, err := DecodeRecord(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			if got := AppendRecord(nil, rec); !bytes.Equal(got, data[:n]) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:n])
			}
		}

		// Structured identity: build a record from the fuzz bytes and
		// round-trip it.
		want := recordFromBytes(data)
		buf := AppendRecord(nil, want)
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decoding freshly encoded record: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	})
}

// recordFromBytes deterministically derives a valid record from fuzz input,
// exercising every field of the accepted-record codec. NaN floats are
// avoided: NaN != NaN would fail DeepEqual without being a codec bug.
func recordFromBytes(data []byte) Record {
	next := func() uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v <<= 8
			if len(data) > 0 {
				v |= uint64(data[0])
				data = data[1:]
			}
		}
		return v
	}
	str := func() string {
		n := int(next() % 9)
		b := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			b = append(b, byte(next()))
		}
		return string(b)
	}
	flt := func() float64 {
		f := math.Float64frombits(next())
		if math.IsNaN(f) {
			return 0.5
		}
		return f
	}
	rec := Record{ID: int64(next())}
	switch next() % 3 {
	case 0:
		rec.Kind = KindAccepted
		rec.Spec = api.JobSpec{
			Workload: str(),
			Mode:     str(),
			Graph: api.GraphSpec{
				Model:    str(),
				N:        int(int64(next())),
				Edges:    int64(next()),
				Exponent: flt(),
				Seed:     next(),
			},
			Priority:  uint32(next()),
			K:         int(int64(next())),
			Threads:   int(int64(next())),
			Batch:     int(int64(next())),
			Seed:      next(),
			Delta:     uint32(next()),
			Damping:   flt(),
			Tolerance: flt(),
			Source:    int(int64(next())),
			Verify:    next()%2 == 0,
		}
	case 1:
		rec.Kind = KindCompleted
		rec.Outcome = byte(next() % 2)
	case 2:
		rec.Kind = KindCanceled
	}
	return rec
}
