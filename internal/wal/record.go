package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"relaxsched/internal/api"
)

// Record kinds. The numeric values are on disk forever; append only.
const (
	// KindAccepted records a job admitted by the service: its id and the
	// full JobSpec (priority included), written durably before the client's
	// 202 response.
	KindAccepted byte = 1
	// KindCompleted records a job reaching a terminal executed state (done
	// or failed), written durably before the status endpoint reports it.
	KindCompleted byte = 2
	// KindCanceled records a job canceled before execution (forced drain,
	// or admission racing a drain).
	KindCanceled byte = 3
)

// Terminal outcomes carried by KindCompleted records.
const (
	// OutcomeDone means the job executed (and, if asked, verified) cleanly.
	OutcomeDone byte = 0
	// OutcomeFailed means execution or verification returned an error. The
	// job is terminal either way — a failed job must not re-run on replay.
	OutcomeFailed byte = 1
)

// Record is one decoded WAL entry.
type Record struct {
	Kind byte
	ID   int64
	// Outcome is meaningful only for KindCompleted (OutcomeDone or
	// OutcomeFailed).
	Outcome byte
	// Spec is set only for KindAccepted.
	Spec api.JobSpec
}

// Wire layout. Every segment file starts with an 8-byte magic; each record
// is:
//
//	crc32c  uint32 LE   over the length, kind and payload bytes
//	length  uint32 LE   payload length in bytes (kind byte excluded)
//	kind    byte
//	payload length bytes
//
// The CRC covers the length field too, so a torn or bit-flipped length is
// detected rather than trusted (a trusted garbage length could otherwise
// direct the reader gigabytes past the real tail).
const (
	segmentMagic  = "RLXWAL01"
	recHeaderSize = 9
	// maxRecordBytes bounds a decoded payload. The largest legitimate
	// record is an accepted entry around a JobSpec — a few hundred bytes —
	// so anything near the bound is corruption, and the bound keeps a
	// corrupt length from asking the reader for a huge allocation.
	maxRecordBytes = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errCorruptRecord reports a record that failed validation (bad CRC,
// over-bound length, unknown kind, malformed payload). In the final segment
// it marks the torn tail; in an earlier segment it is real corruption.
var errCorruptRecord = errors.New("wal: corrupt record")

// appendUint32/appendUint64 are fixed-width little-endian appends; varints
// are deliberately avoided for numeric spec fields that are commonly zero
// anyway only where sign matters (Source can be -1).
func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendRecord encodes rec (header and payload) onto b and returns the
// extended slice. It allocates only when b lacks capacity, so a caller
// reusing its buffer appends with zero steady-state allocations.
func AppendRecord(b []byte, rec Record) []byte {
	base := len(b)
	// Reserve the header; the CRC and length are patched once the payload
	// size is known.
	b = append(b, make([]byte, recHeaderSize)...)
	b[base+8] = rec.Kind
	b = appendUint64(b, uint64(rec.ID))
	switch rec.Kind {
	case KindAccepted:
		s := &rec.Spec
		b = appendString(b, s.Workload)
		b = appendString(b, s.Mode)
		b = appendString(b, s.Graph.Model)
		b = appendUint64(b, uint64(s.Graph.N))
		b = appendUint64(b, uint64(s.Graph.Edges))
		b = appendUint64(b, math.Float64bits(s.Graph.Exponent))
		b = appendUint64(b, s.Graph.Seed)
		b = appendUint32(b, s.Priority)
		b = binary.AppendVarint(b, int64(s.K))
		b = binary.AppendVarint(b, int64(s.Threads))
		b = binary.AppendVarint(b, int64(s.Batch))
		b = appendUint64(b, s.Seed)
		b = appendUint32(b, s.Delta)
		b = appendUint64(b, math.Float64bits(s.Damping))
		b = appendUint64(b, math.Float64bits(s.Tolerance))
		b = binary.AppendVarint(b, int64(s.Source))
		b = appendBool(b, s.Verify)
	case KindCompleted:
		b = append(b, rec.Outcome)
	case KindCanceled:
	}
	payloadLen := len(b) - base - recHeaderSize
	binary.LittleEndian.PutUint32(b[base+4:], uint32(payloadLen))
	crc := crc32.Checksum(b[base+4:], crcTable)
	binary.LittleEndian.PutUint32(b[base:], crc)
	return b
}

// recordDecoder walks a payload; every read is bounds-checked so arbitrary
// bytes decode to an error, never a panic.
type recordDecoder struct {
	b []byte
	i int
}

func (d *recordDecoder) uint32() (uint32, error) {
	if d.i+4 > len(d.b) {
		return 0, errCorruptRecord
	}
	v := binary.LittleEndian.Uint32(d.b[d.i:])
	d.i += 4
	return v, nil
}

func (d *recordDecoder) uint64() (uint64, error) {
	if d.i+8 > len(d.b) {
		return 0, errCorruptRecord
	}
	v := binary.LittleEndian.Uint64(d.b[d.i:])
	d.i += 8
	return v, nil
}

func (d *recordDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.i:])
	if n <= 0 {
		return 0, errCorruptRecord
	}
	d.i += n
	return v, nil
}

func (d *recordDecoder) str() (string, error) {
	n, w := binary.Uvarint(d.b[d.i:])
	if w <= 0 || n > uint64(len(d.b)-d.i-w) {
		return "", errCorruptRecord
	}
	s := string(d.b[d.i+w : d.i+w+int(n)])
	d.i += w + int(n)
	return s, nil
}

func (d *recordDecoder) byte() (byte, error) {
	if d.i >= len(d.b) {
		return 0, errCorruptRecord
	}
	v := d.b[d.i]
	d.i++
	return v, nil
}

func (d *recordDecoder) bool() (bool, error) {
	v, err := d.byte()
	if err != nil || v > 1 {
		return false, errCorruptRecord
	}
	return v == 1, nil
}

// DecodeRecord decodes one record from the front of b, returning the record
// and the number of bytes consumed. Arbitrary input yields an error (short
// input, bad CRC, malformed payload), never a panic.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: short header (%d bytes)", errCorruptRecord, len(b))
	}
	payloadLen := binary.LittleEndian.Uint32(b[4:])
	if payloadLen > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds bound %d", errCorruptRecord, payloadLen, maxRecordBytes)
	}
	total := recHeaderSize + int(payloadLen)
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", errCorruptRecord, len(b), total)
	}
	if crc := crc32.Checksum(b[4:total], crcTable); crc != binary.LittleEndian.Uint32(b) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", errCorruptRecord)
	}
	rec, err := decodePayload(b[8], b[recHeaderSize:total])
	if err != nil {
		return Record{}, 0, err
	}
	return rec, total, nil
}

func decodePayload(kind byte, payload []byte) (Record, error) {
	d := &recordDecoder{b: payload}
	rec := Record{Kind: kind}
	id, err := d.uint64()
	if err != nil {
		return Record{}, err
	}
	rec.ID = int64(id)
	switch kind {
	case KindAccepted:
		s := &rec.Spec
		read := func() {
			var n, e, ex, gs, js, dmp, tol uint64
			var k, th, ba, src int64
			s.Workload, err = d.str()
			if err == nil {
				s.Mode, err = d.str()
			}
			if err == nil {
				s.Graph.Model, err = d.str()
			}
			if err == nil {
				n, err = d.uint64()
				s.Graph.N = int(n)
			}
			if err == nil {
				e, err = d.uint64()
				s.Graph.Edges = int64(e)
			}
			if err == nil {
				ex, err = d.uint64()
				s.Graph.Exponent = math.Float64frombits(ex)
			}
			if err == nil {
				gs, err = d.uint64()
				s.Graph.Seed = gs
			}
			if err == nil {
				s.Priority, err = d.uint32()
			}
			if err == nil {
				k, err = d.varint()
				s.K = int(k)
			}
			if err == nil {
				th, err = d.varint()
				s.Threads = int(th)
			}
			if err == nil {
				ba, err = d.varint()
				s.Batch = int(ba)
			}
			if err == nil {
				js, err = d.uint64()
				s.Seed = js
			}
			if err == nil {
				s.Delta, err = d.uint32()
			}
			if err == nil {
				dmp, err = d.uint64()
				s.Damping = math.Float64frombits(dmp)
			}
			if err == nil {
				tol, err = d.uint64()
				s.Tolerance = math.Float64frombits(tol)
			}
			if err == nil {
				src, err = d.varint()
				s.Source = int(src)
			}
			if err == nil {
				s.Verify, err = d.bool()
			}
		}
		read()
		if err != nil {
			return Record{}, err
		}
	case KindCompleted:
		rec.Outcome, err = d.byte()
		if err != nil || rec.Outcome > OutcomeFailed {
			return Record{}, errCorruptRecord
		}
	case KindCanceled:
	default:
		return Record{}, fmt.Errorf("%w: unknown record kind %d", errCorruptRecord, kind)
	}
	if d.i != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", errCorruptRecord, len(payload)-d.i)
	}
	return rec, nil
}

// readRecord reads the next record from r. io.EOF means a clean end of the
// segment; errCorruptRecord-wrapped errors (including unexpected EOF inside
// a record) mean the remainder of the segment is unreadable.
func readRecord(r *bufio.Reader, scratch []byte) (Record, int, []byte, error) {
	scratch = scratch[:0]
	header, err := readFull(r, scratch, recHeaderSize)
	if err != nil {
		if errors.Is(err, io.EOF) && len(header) == 0 {
			return Record{}, 0, scratch, io.EOF
		}
		return Record{}, 0, scratch, fmt.Errorf("%w: torn header", errCorruptRecord)
	}
	payloadLen := binary.LittleEndian.Uint32(header[4:])
	if payloadLen > maxRecordBytes {
		return Record{}, 0, scratch, fmt.Errorf("%w: payload length %d exceeds bound %d", errCorruptRecord, payloadLen, maxRecordBytes)
	}
	full, err := readFull(r, header, recHeaderSize+int(payloadLen))
	if err != nil {
		return Record{}, 0, full, fmt.Errorf("%w: torn payload", errCorruptRecord)
	}
	rec, n, err := DecodeRecord(full)
	return rec, n, full, err
}

// readFull extends buf (already holding len(buf) bytes) to total bytes from
// r, returning the possibly shorter buffer and an error when r ends first.
func readFull(r *bufio.Reader, buf []byte, total int) ([]byte, error) {
	for len(buf) < total {
		if cap(buf) < total {
			grown := make([]byte, len(buf), total)
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):total])
		buf = buf[:len(buf)+n]
		if err != nil {
			return buf, err
		}
	}
	return buf, nil
}
