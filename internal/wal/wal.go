// Package wal is the durable job log behind relaxd's -wal-dir: an
// append-only, checksummed, segment-rotating write-ahead log of accepted
// jobs, with fsync group commit on the accept path and compaction that
// drops fully-completed segments.
//
// The contract the service layer builds on:
//
//   - AppendAccepted returns only after the record is fsynced, so a job
//     that received its 202 survives SIGKILL. Concurrent appenders share
//     one fsync (group commit): a waiter joins the in-flight sync cohort
//     instead of issuing its own, which keeps admission latency bounded
//     under load instead of paying one disk flush per job.
//   - AppendCompleted/AppendCanceled mark a job terminal, also durably
//     before the caller exposes the terminal state — so a job a client
//     observed done is never re-executed after a crash.
//   - Open replays the log: jobs with an accepted record but no terminal
//     mark are returned for re-enqueue (original spec and priority); jobs
//     with marks are returned as terminal history. A torn tail in the
//     final segment — the only place a crash can tear a write — ends the
//     replay cleanly at the last valid record, and Open truncates the
//     tear away before sealing the segment (so the repaired segment
//     replays cleanly on every later boot); corruption in any earlier
//     segment is a hard error, because those segments were fully synced
//     before rotation.
//   - Segments rotate at SegmentBytes. A prefix of sealed segments whose
//     accepted jobs are all durably marked terminal is deleted (the marks
//     themselves may live in later segments; replay ignores marks for
//     unknown ids, which is exactly what a mark whose accept was compacted
//     away looks like).
//
// A failed fsync poisons the log: once durability cannot be promised,
// every subsequent append fails, and the service layer refuses admission
// rather than handing out 202s it cannot honor.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"relaxsched/internal/api"
)

// Options configures Open.
type Options struct {
	// Dir is the log directory; it is created if absent. Segment files are
	// named wal-<16-hex-digit index>.log.
	Dir string
	// SegmentBytes is the rotation threshold (default 4 MiB). Records never
	// split across segments: the active segment rotates once its size
	// reaches the threshold, so segments exceed it by at most one record.
	SegmentBytes int64
}

const defaultSegmentBytes = 4 << 20

// Stats is a snapshot of the log's counters, all since this Open (the
// on-disk state persists; the counters do not).
type Stats struct {
	// Appends counts records appended (accepted + terminal marks); Fsyncs
	// counts file syncs issued — with group commit Fsyncs ≤ Appends, and
	// the gap is the batching win.
	Appends int64
	Fsyncs  int64
	// ReplayedJobs counts accepted-but-unfinished jobs Open handed back
	// for re-enqueue.
	ReplayedJobs int64
	// Segments is the current number of live segment files; Compacted
	// counts segments deleted by compaction since Open.
	Segments  int
	Compacted int64
	// Bytes counts bytes appended since Open (headers included).
	Bytes int64
	// TornTail reports that Open found (and stopped cleanly at) a torn
	// record at the end of the final segment.
	TornTail bool
}

// ReplayedJob is one accepted-but-unfinished job recovered by Open, in
// original acceptance order.
type ReplayedJob struct {
	ID   int64
	Spec api.JobSpec
}

// TerminalJob is one job whose terminal mark survived in the log: done,
// failed or canceled before the crash. Jobs whose accept record was
// compacted away do not appear (their marks are ignored as unknown).
type TerminalJob struct {
	ID      int64
	Kind    byte // KindCompleted or KindCanceled
	Outcome byte // for KindCompleted: OutcomeDone or OutcomeFailed
	Spec    api.JobSpec
}

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Unfinished lists accepted jobs with no terminal mark, in acceptance
	// order; the service re-enqueues them.
	Unfinished []ReplayedJob
	// Terminal lists jobs whose terminal mark survived, in acceptance
	// order.
	Terminal []TerminalJob
	// MaxID is the largest job id seen anywhere in the log (0 when empty);
	// the service resumes id assignment above it.
	MaxID int64
	// Orphans lists ids (ascending) whose terminal mark survives but whose
	// accept record was compacted away. Their history is gone — the service
	// reports them unknown — yet the log still proves they finished, which
	// is what crash harnesses need to tell "compacted" from "lost".
	Orphans []int64
	// TornTail reports that replay stopped at a torn or corrupt record in
	// the final segment (the signature of a crash mid-append).
	TornTail bool
}

type segment struct {
	index uint64
	path  string
	// outstanding counts accepted records in this segment with no terminal
	// mark yet; lastMark is the append sequence of the newest mark that
	// decremented it (compaction must not act on marks that are not yet
	// durable).
	outstanding int
	lastMark    uint64
	bytes       int64
}

// WAL is the append side of the log. All methods are safe for concurrent
// use.
type WAL struct {
	dir      string
	segBytes int64

	// mu guards the encoder buffer, the active file and writer, the
	// segment list and the job→segment index. Appends hold it only for the
	// in-memory encode+buffered-write; fsyncs happen outside it.
	mu       sync.Mutex
	buf      []byte
	f        *os.File
	bw       *bufio.Writer
	segments []*segment // oldest first; last is the active segment
	jobSeg   map[int64]*segment
	written  uint64 // records appended (monotone append sequence)
	appends  int64
	bytes    int64
	closed   bool

	// syncMu guards the group-commit state: which append sequence is
	// durable, whether a sync leader is in flight, and the sticky sync
	// error that poisons the log.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	closing   bool // Close in progress: no new sync leaders may start
	synced    uint64
	syncErr   error
	fsyncs    int64
	compacted int64

	replayed int64
	tornTail bool

	// testSyncDelay, when set by tests, runs in the sync leader just
	// before the fsync — slowing syncs down so group-commit batching is
	// observable deterministically.
	testSyncDelay func()
}

// ErrClosed reports an append against a closed log.
var ErrClosed = errors.New("wal: closed")

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", index))
}

// Open opens (or creates) the log in opts.Dir, replays every existing
// segment, and starts a fresh active segment — sealed segments are never
// appended to again, which is what makes a torn tail strictly a
// final-segment phenomenon. The returned Replay hands the recovered state
// to the caller exactly once.
func Open(opts Options) (*WAL, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: directory is required")
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	w := &WAL{
		dir:      opts.Dir,
		segBytes: segBytes,
		jobSeg:   make(map[int64]*segment),
	}
	w.syncCond = sync.NewCond(&w.syncMu)

	replay, err := w.replayDir()
	if err != nil {
		return nil, nil, err
	}
	w.replayed = int64(len(replay.Unfinished))
	replay.TornTail = w.tornTail
	if w.tornTail {
		// Repair the tear now, while the segment is still final. Once this
		// Open seals it behind a fresh active segment, corruption in it
		// would be a hard error on every later boot — tolerating the tear
		// without truncating it would make the *second* restart after a
		// crash fail.
		if err := w.truncateTornTail(); err != nil {
			return nil, nil, err
		}
	}

	// Start the new active segment above every existing index.
	var next uint64 = 1
	if n := len(w.segments); n > 0 {
		next = w.segments[n-1].index + 1
	}
	if err := w.openSegment(next); err != nil {
		return nil, nil, err
	}
	// Sealed segments that are already fully terminal can go now.
	w.compact()
	return w, replay, nil
}

// Inspect replays the log in opts-free read-only mode: no new segment is
// created, nothing is compacted, and the directory is left byte-for-byte
// untouched, so it is safe to run over the log of a crashed process before
// restarting it. Crash harnesses and operator tooling use it as ground
// truth for what the log durably holds.
func Inspect(dir string) (*Replay, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: directory is required")
	}
	w := &WAL{dir: dir, jobSeg: make(map[int64]*segment)}
	replay, err := w.replayDir()
	if err != nil {
		return nil, err
	}
	replay.TornTail = w.tornTail
	return replay, nil
}

// replayDir scans every existing segment in index order, building the
// replay result and the per-segment outstanding counts.
func (w *WAL) replayDir() (*Replay, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading directory: %w", err)
	}
	var indexes []uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%016x.log", &idx); n == 1 {
			indexes = append(indexes, idx)
		}
	}
	sort.Slice(indexes, func(i, j int) bool { return indexes[i] < indexes[j] })

	replay := &Replay{}
	// pending preserves acceptance order; the map indexes into it.
	type pendingJob struct {
		rec      Record
		seg      *segment
		terminal *Record // nil while unfinished
	}
	var pending []*pendingJob
	byID := make(map[int64]*pendingJob)
	orphans := make(map[int64]bool)

	for i, idx := range indexes {
		seg := &segment{index: idx, path: segmentPath(w.dir, idx)}
		final := i == len(indexes)-1
		if err := w.replaySegment(seg, final, func(rec Record) {
			if rec.ID > replay.MaxID {
				replay.MaxID = rec.ID
			}
			switch rec.Kind {
			case KindAccepted:
				p := &pendingJob{rec: rec, seg: seg}
				seg.outstanding++
				pending = append(pending, p)
				byID[rec.ID] = p
			case KindCompleted, KindCanceled:
				// A mark for an id with no live accept record means the accept
				// sat in an already-compacted segment: the job is durably
				// terminal but its history is gone.
				if p := byID[rec.ID]; p != nil && p.terminal == nil {
					mark := rec
					p.terminal = &mark
					p.seg.outstanding--
				} else if p == nil {
					orphans[rec.ID] = true
				}
			}
		}); err != nil {
			return nil, err
		}
		w.segments = append(w.segments, seg)
	}

	for _, p := range pending {
		if p.terminal == nil {
			replay.Unfinished = append(replay.Unfinished, ReplayedJob{ID: p.rec.ID, Spec: p.rec.Spec})
			w.jobSeg[p.rec.ID] = p.seg
		} else {
			replay.Terminal = append(replay.Terminal, TerminalJob{
				ID:      p.rec.ID,
				Kind:    p.terminal.Kind,
				Outcome: p.terminal.Outcome,
				Spec:    p.rec.Spec,
			})
		}
	}
	for id := range orphans {
		replay.Orphans = append(replay.Orphans, id)
	}
	sort.Slice(replay.Orphans, func(i, j int) bool { return replay.Orphans[i] < replay.Orphans[j] })
	return replay, nil
}

// replaySegment streams one segment's records into visit. In the final
// segment a torn or corrupt record ends the replay cleanly (a crash mid
// append tears exactly there); anywhere else it is a hard error, because
// sealed segments were fully synced before rotation.
func (w *WAL) replaySegment(seg *segment, final bool, visit func(Record)) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segmentMagic {
		// A crash between creating the next segment file and flushing its
		// header leaves a short or garbled final segment; treat it as the
		// (empty) torn tail. Earlier segments were synced header-first.
		if final {
			w.tornTail = true
			return nil
		}
		return fmt.Errorf("wal: segment %s: bad magic", seg.path)
	}
	seg.bytes = int64(len(segmentMagic))

	var scratch []byte
	for {
		rec, n, buf, err := readRecord(r, scratch)
		scratch = buf
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if errors.Is(err, errCorruptRecord) && final {
				w.tornTail = true
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", seg.path, err)
		}
		seg.bytes += int64(n)
		visit(rec)
	}
}

// truncateTornTail cuts the final segment back to its last valid record
// after replay found a tear, and syncs the cut. replaySegment left
// seg.bytes at exactly the byte offset replay stopped at, so everything
// replayed survives and only the torn garbage goes. A final segment
// without even a valid header (a crash between creating the file and
// flushing the magic) holds nothing replayable and is deleted outright.
func (w *WAL) truncateTornTail() error {
	n := len(w.segments)
	seg := w.segments[n-1]
	if seg.bytes < int64(len(segmentMagic)) {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: removing headerless torn segment: %w", err)
		}
		w.segments = w.segments[:n-1]
		return nil
	}
	f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: repairing torn segment: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(seg.bytes); err != nil {
		return fmt.Errorf("wal: truncating torn segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncated segment: %w", err)
	}
	return nil
}

// openSegment creates and activates a fresh segment file. Callers must not
// hold w.mu (Open) or must hold it (rotation) — it touches only fields the
// caller already owns exclusively.
func (w *WAL) openSegment(index uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, index), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	seg := &segment{index: index, path: f.Name(), bytes: int64(len(segmentMagic))}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		w.bw.Reset(f)
	}
	if _, err := w.bw.WriteString(segmentMagic); err != nil {
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	w.segments = append(w.segments, seg)
	return nil
}

// AppendAccepted durably records an accepted job before the caller
// acknowledges it. It returns once the record is fsynced (possibly by a
// concurrent appender's group commit).
func (w *WAL) AppendAccepted(id int64, spec api.JobSpec) error {
	w.mu.Lock()
	seq, err := w.appendLocked(Record{Kind: KindAccepted, ID: id, Spec: spec})
	if err == nil {
		seg := w.segments[len(w.segments)-1]
		seg.outstanding++
		w.jobSeg[id] = seg
	}
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.syncTo(seq)
}

// AppendCompleted durably marks a job's executed terminal state (done or
// failed) and then compacts any newly fully-terminal segment prefix.
func (w *WAL) AppendCompleted(id int64, outcome byte) error {
	return w.appendMark(Record{Kind: KindCompleted, ID: id, Outcome: outcome})
}

// AppendCanceled durably marks a job canceled before execution.
func (w *WAL) AppendCanceled(id int64) error {
	return w.appendMark(Record{Kind: KindCanceled, ID: id})
}

func (w *WAL) appendMark(rec Record) error {
	w.mu.Lock()
	seq, err := w.appendLocked(rec)
	if err == nil {
		if seg, ok := w.jobSeg[rec.ID]; ok {
			seg.outstanding--
			seg.lastMark = seq
			delete(w.jobSeg, rec.ID)
		}
	}
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.syncTo(seq); err != nil {
		return err
	}
	// Only now is the mark durable; a segment freed by it may be dropped.
	w.compact()
	return nil
}

// appendLocked encodes rec into the reused buffer and writes it to the
// buffered active segment, returning the record's append sequence. The
// fsync (and any rotation) is the sync leader's job. Callers hold w.mu.
func (w *WAL) appendLocked(rec Record) (uint64, error) {
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.syncPoisoned(); err != nil {
		return 0, err
	}
	w.buf = AppendRecord(w.buf[:0], rec)
	if _, err := w.bw.Write(w.buf); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	w.written++
	w.appends++
	w.bytes += int64(len(w.buf))
	w.segments[len(w.segments)-1].bytes += int64(len(w.buf))
	return w.written, nil
}

// syncPoisoned reports the sticky sync error, if any.
func (w *WAL) syncPoisoned() error {
	w.syncMu.Lock()
	err := w.syncErr
	w.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: log poisoned by earlier sync failure: %w", err)
	}
	return nil
}

// syncTo blocks until append sequence seq is durable. One caller at a time
// becomes the sync leader: it flushes the buffered writer, rotates the
// segment if due, and issues the fsync; everyone else waits on the cohort
// and shares the result. A sync failure is sticky — durability can no
// longer be promised, so every future append fails too.
func (w *WAL) syncTo(seq uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for {
		if w.syncErr != nil {
			return fmt.Errorf("wal: sync: %w", w.syncErr)
		}
		if w.synced >= seq {
			return nil
		}
		if w.syncing || w.closing {
			// An in-flight leader covers us, or Close is about to flush and
			// sync everything buffered (including seq) itself; either way the
			// next broadcast resolves this wait.
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()

		w.mu.Lock()
		target := w.written
		err := w.bw.Flush()
		var f *os.File
		if err == nil {
			if w.segments[len(w.segments)-1].bytes >= w.segBytes {
				// Rotation syncs and closes the old file itself, so records
				// up to target are durable once it returns; no further
				// fsync needed for this cohort.
				err = w.rotateLocked()
			} else {
				f = w.f
			}
		}
		w.mu.Unlock()

		if err == nil && f != nil {
			if w.testSyncDelay != nil {
				w.testSyncDelay()
			}
			err = f.Sync()
		}

		w.syncMu.Lock()
		w.syncing = false
		w.fsyncs++
		if err != nil {
			w.syncErr = err
		} else if target > w.synced {
			w.synced = target
		}
		w.syncCond.Broadcast()
	}
}

// rotateLocked seals the active segment (flushed by the caller; here it is
// synced and closed) and opens the next one. Callers hold w.mu and are the
// sync leader, so no other goroutine can be mid-Sync on the old file.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	next := w.segments[len(w.segments)-1].index + 1
	return w.openSegment(next)
}

// compact deletes the longest prefix of sealed segments whose accepted
// jobs are all durably marked terminal. Prefix-only deletion is what keeps
// replay correct: a surviving segment may hold marks for compacted
// accepts (ignored as unknown), but never the other way around.
func (w *WAL) compact() {
	w.syncMu.Lock()
	synced := w.synced
	w.syncMu.Unlock()

	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segments) > 1 {
		seg := w.segments[0]
		if seg.outstanding != 0 || seg.lastMark > synced {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			// Leave it for the next attempt (or the operator); an
			// undeleted segment only costs disk, never correctness.
			break
		}
		w.segments = w.segments[1:]
		w.compacted++
	}
}

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	s := Stats{
		Appends:      w.appends,
		ReplayedJobs: w.replayed,
		Segments:     len(w.segments),
		Bytes:        w.bytes,
		TornTail:     w.tornTail,
	}
	compacted := w.compacted
	w.mu.Unlock()
	w.syncMu.Lock()
	s.Fsyncs = w.fsyncs
	w.syncMu.Unlock()
	s.Compacted = compacted
	return s
}

// Close flushes and syncs the active segment and closes the log. Appends
// after Close fail with ErrClosed. Close is idempotent.
func (w *WAL) Close() error {
	// Bar new sync leaders and wait out any in-flight one before touching
	// the file: a leader holds no lock during its fsync, so closing the
	// file under it would fail that sync with "file already closed" and
	// permanently poison a log whose records this Close makes durable
	// anyway. Waiters parked behind the barred leader are resolved by the
	// broadcast below — Close's own flush+sync covers their records.
	w.syncMu.Lock()
	w.closing = true
	for w.syncing {
		w.syncCond.Wait()
	}
	w.syncMu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.bw.Flush()
	if syncErr := w.f.Sync(); err == nil {
		err = syncErr
	}
	if closeErr := w.f.Close(); err == nil {
		err = closeErr
	}
	written := w.written
	w.mu.Unlock()

	// Wake every cohort waiter; whatever was flushed above is durable.
	w.syncMu.Lock()
	if err == nil {
		if written > w.synced {
			w.synced = written
		}
	} else if w.syncErr == nil {
		w.syncErr = err
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return err
}
