package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"relaxsched/internal/api"
)

func testSpec(i int) api.JobSpec {
	return api.JobSpec{
		Workload: "pagerank",
		Mode:     "relaxed",
		Graph: api.GraphSpec{
			Model:    "gnp",
			N:        400 + i,
			Edges:    1600,
			Exponent: 2.5,
			Seed:     7,
		},
		Priority:  uint32(1000 - i),
		K:         16,
		Threads:   2,
		Batch:     32,
		Seed:      uint64(i) * 977,
		Delta:     4,
		Damping:   0.85,
		Tolerance: 1e-9,
		Source:    -1,
		Verify:    true,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindAccepted, ID: 1, Spec: testSpec(0)},
		{Kind: KindAccepted, ID: math.MaxInt64, Spec: api.JobSpec{Source: -1}},
		{Kind: KindAccepted, ID: 7, Spec: api.JobSpec{Workload: "sssp", Mode: "exact", Source: 3}},
		{Kind: KindCompleted, ID: 2, Outcome: OutcomeDone},
		{Kind: KindCompleted, ID: 3, Outcome: OutcomeFailed},
		{Kind: KindCanceled, ID: 4},
	}
	var buf []byte
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	good := AppendRecord(nil, Record{Kind: KindAccepted, ID: 42, Spec: testSpec(1)})
	t.Run("short", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, _, err := DecodeRecord(good[:n]); !errors.Is(err, errCorruptRecord) {
				t.Fatalf("prefix of %d bytes: err = %v, want corrupt", n, err)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := range good {
			mut := append([]byte(nil), good...)
			mut[i] ^= 0x40
			if _, _, err := DecodeRecord(mut); !errors.Is(err, errCorruptRecord) {
				t.Fatalf("flip at byte %d: err = %v, want corrupt", i, err)
			}
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		// Re-encode with a bogus kind and a fresh CRC: the CRC passes, the
		// payload check must still reject it.
		mut := append([]byte(nil), AppendRecord(nil, Record{Kind: KindCanceled, ID: 1})...)
		mut[8] = 99
		patchCRC(mut)
		if _, _, err := DecodeRecord(mut); !errors.Is(err, errCorruptRecord) {
			t.Fatalf("unknown kind: err = %v, want corrupt", err)
		}
	})
}

// patchCRC recomputes the leading CRC of a single encoded record so tests
// can corrupt payloads without tripping the checksum.
func patchCRC(b []byte) {
	binary.LittleEndian.PutUint32(b, crc32.Checksum(b[4:], crcTable))
}

func openT(t *testing.T, dir string, segBytes int64) (*WAL, *Replay) {
	t.Helper()
	w, rep, err := Open(Options{Dir: dir, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, rep
}

func TestOpenEmptyAndReplayUnfinished(t *testing.T) {
	dir := t.TempDir()
	w, rep := openT(t, dir, 0)
	if len(rep.Unfinished) != 0 || len(rep.Terminal) != 0 || rep.MaxID != 0 {
		t.Fatalf("fresh log replay not empty: %+v", rep)
	}
	for i := 1; i <= 5; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatalf("AppendAccepted(%d): %v", i, err)
		}
	}
	if err := w.AppendCompleted(2, OutcomeDone); err != nil {
		t.Fatalf("AppendCompleted: %v", err)
	}
	if err := w.AppendCompleted(4, OutcomeFailed); err != nil {
		t.Fatalf("AppendCompleted: %v", err)
	}
	if err := w.AppendCanceled(5); err != nil {
		t.Fatalf("AppendCanceled: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, rep := openT(t, dir, 0)
	defer w2.Close()
	if rep.MaxID != 5 {
		t.Fatalf("MaxID = %d, want 5", rep.MaxID)
	}
	var ids []int64
	for _, j := range rep.Unfinished {
		ids = append(ids, j.ID)
		if !reflect.DeepEqual(j.Spec, testSpec(int(j.ID))) {
			t.Fatalf("job %d: replayed spec mismatch: %+v", j.ID, j.Spec)
		}
	}
	if !reflect.DeepEqual(ids, []int64{1, 3}) {
		t.Fatalf("unfinished ids = %v, want [1 3]", ids)
	}
	wantTerm := map[int64][2]byte{2: {KindCompleted, OutcomeDone}, 4: {KindCompleted, OutcomeFailed}, 5: {KindCanceled, 0}}
	if len(rep.Terminal) != len(wantTerm) {
		t.Fatalf("terminal = %+v, want ids 2,4,5", rep.Terminal)
	}
	for _, tj := range rep.Terminal {
		want, ok := wantTerm[tj.ID]
		if !ok || tj.Kind != want[0] || tj.Outcome != want[1] {
			t.Fatalf("terminal job %+v unexpected", tj)
		}
	}
	if got := w2.Stats().ReplayedJobs; got != 2 {
		t.Fatalf("ReplayedJobs = %d, want 2", got)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record or two forces a rotation.
	w, _ := openT(t, dir, 256)
	const n = 12
	for i := 1; i <= n; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatalf("AppendAccepted(%d): %v", i, err)
		}
	}
	if s := w.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", s.Segments)
	}
	for i := 1; i <= n; i++ {
		if err := w.AppendCompleted(int64(i), OutcomeDone); err != nil {
			t.Fatalf("AppendCompleted(%d): %v", i, err)
		}
	}
	s := w.Stats()
	if s.Compacted == 0 {
		t.Fatalf("expected compaction after all jobs completed: %+v", s)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Everything terminal: restart must replay no unfinished work even
	// though surviving segments hold marks for compacted accepts.
	w2, rep := openT(t, dir, 256)
	defer w2.Close()
	if len(rep.Unfinished) != 0 {
		t.Fatalf("unfinished after full completion = %+v", rep.Unfinished)
	}
	if rep.MaxID != n {
		t.Fatalf("MaxID = %d, want %d", rep.MaxID, n)
	}
}

func TestCompactionKeepsSegmentsWithOutstandingJobs(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 256)
	defer w.Close()
	const n = 10
	for i := 1; i <= n; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatalf("AppendAccepted(%d): %v", i, err)
		}
	}
	// Complete everything except job 1, which pins the first segment — and
	// with it the whole prefix.
	for i := 2; i <= n; i++ {
		if err := w.AppendCompleted(int64(i), OutcomeDone); err != nil {
			t.Fatalf("AppendCompleted(%d): %v", i, err)
		}
	}
	if s := w.Stats(); s.Compacted != 0 {
		t.Fatalf("compaction ran despite outstanding job 1: %+v", s)
	}
	if err := w.AppendCompleted(1, OutcomeDone); err != nil {
		t.Fatalf("AppendCompleted(1): %v", err)
	}
	if s := w.Stats(); s.Compacted == 0 {
		t.Fatalf("no compaction after last job completed: %+v", s)
	}
}

// TestInspectReadOnly: Inspect must report exactly what Open would replay
// without creating a segment, compacting, or otherwise touching the
// directory — it is the crash harness's ground truth between a kill and
// the restart.
func TestInspectReadOnly(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 0)
	for i := 1; i <= 3; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatalf("AppendAccepted(%d): %v", i, err)
		}
	}
	if err := w.AppendCompleted(1, OutcomeDone); err != nil {
		t.Fatalf("AppendCompleted: %v", err)
	}
	// No Close: the log looks exactly like a crashed process left it
	// (appends are fsynced before they return, so everything is on disk).
	before := dataSegments(t, dir)

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	var ids []int64
	for _, j := range rep.Unfinished {
		ids = append(ids, j.ID)
	}
	if !reflect.DeepEqual(ids, []int64{2, 3}) {
		t.Fatalf("unfinished ids = %v, want [2 3]", ids)
	}
	if len(rep.Terminal) != 1 || rep.Terminal[0].ID != 1 || rep.Terminal[0].Outcome != OutcomeDone {
		t.Fatalf("terminal = %+v, want job 1 done", rep.Terminal)
	}
	if rep.MaxID != 3 || rep.TornTail {
		t.Fatalf("MaxID=%d TornTail=%v, want 3/false", rep.MaxID, rep.TornTail)
	}

	if after := dataSegments(t, dir); !reflect.DeepEqual(after, before) {
		t.Fatalf("Inspect changed the directory: %v -> %v", before, after)
	}
	w.Close()
}

// TestInspectReportsOrphanMarks: once compaction deletes a segment, the
// terminal marks of its jobs may survive in newer segments without their
// accepts. Inspect must surface those ids as Orphans so a crash harness
// can tell "history compacted" from "acceptance lost". (A job whose accept
// AND mark both sat in compacted segments vanishes from the log entirely —
// also fine: both records were durably terminal before compaction touched
// them, and an unfinished accept pins its segment forever.)
func TestInspectReportsOrphanMarks(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 128) // tiny segments: every few records rotate
	const jobs = 8
	for i := 1; i <= jobs; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatalf("AppendAccepted(%d): %v", i, err)
		}
	}
	for i := 1; i <= jobs; i++ {
		if err := w.AppendCompleted(int64(i), OutcomeDone); err != nil {
			t.Fatalf("AppendCompleted(%d): %v", i, err)
		}
	}
	if s := w.Stats(); s.Compacted == 0 {
		t.Fatalf("tiny segments never compacted: %+v", s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(rep.Unfinished) != 0 {
		t.Fatalf("unfinished after full completion: %+v", rep.Unfinished)
	}
	if len(rep.Orphans) == 0 {
		t.Fatalf("compaction ran but Inspect reports no orphan marks: %+v", rep)
	}
	terminal := make(map[int64]bool)
	for _, j := range rep.Terminal {
		terminal[j.ID] = true
	}
	for _, id := range rep.Orphans {
		if terminal[id] {
			t.Fatalf("job %d is both terminal and orphan: %+v", id, rep)
		}
		if id < 1 || id > jobs {
			t.Fatalf("orphan id %d was never written: %+v", id, rep)
		}
	}
	// The active segment never compacts, so the newest mark always survives
	// — job 8's accept is long gone, making it an orphan.
	if last := rep.Orphans[len(rep.Orphans)-1]; last != jobs {
		t.Fatalf("last orphan = %d, want %d: %+v", last, jobs, rep)
	}
}

func dataSegments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestReplayTornTail(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-2] ^= 0x10
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, _ := openT(t, dir, 0)
			for i := 1; i <= 4; i++ {
				if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			segs := dataSegments(t, dir)
			if len(segs) != 1 {
				t.Fatalf("segments = %v, want 1", segs)
			}
			// Corrupt the tail record: replay must stop at job 3.
			tc.corrupt(t, segs[0])

			w2, rep := openT(t, dir, 0)
			var ids []int64
			for _, j := range rep.Unfinished {
				ids = append(ids, j.ID)
			}
			if !reflect.DeepEqual(ids, []int64{1, 2, 3}) {
				t.Fatalf("unfinished after torn tail = %v, want [1 2 3]", ids)
			}
			if !w2.Stats().TornTail {
				t.Fatal("Stats().TornTail = false after torn tail")
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}

			// Open truncated the tear away before sealing the segment behind
			// a fresh active one. The next boot sees it as a sealed segment —
			// where corruption is a hard error — so it must replay cleanly,
			// with the same unfinished set and nothing torn.
			w3, rep3 := openT(t, dir, 0)
			defer w3.Close()
			ids = ids[:0]
			for _, j := range rep3.Unfinished {
				ids = append(ids, j.ID)
			}
			if !reflect.DeepEqual(ids, []int64{1, 2, 3}) {
				t.Fatalf("unfinished after repaired reopen = %v, want [1 2 3]", ids)
			}
			if rep3.TornTail || w3.Stats().TornTail {
				t.Fatal("torn tail still flagged after Open repaired it")
			}
		})
	}
}

// TestReplayHeaderlessFinalSegment covers a crash between creating the
// next segment file and flushing its magic: the final segment holds
// nothing replayable, so Open must flag the (empty) torn tail, delete the
// dead file, and leave the log rebooting cleanly ever after.
func TestReplayHeaderlessFinalSegment(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 0)
	for i := 1; i <= 2; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	dead := segmentPath(dir, 99)
	if err := os.WriteFile(dead, []byte(segmentMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}

	for reopen := 0; reopen < 2; reopen++ {
		w2, rep := openT(t, dir, 0)
		var ids []int64
		for _, j := range rep.Unfinished {
			ids = append(ids, j.ID)
		}
		if !reflect.DeepEqual(ids, []int64{1, 2}) {
			t.Fatalf("reopen %d: unfinished = %v, want [1 2]", reopen, ids)
		}
		if rep.TornTail != (reopen == 0) {
			t.Fatalf("reopen %d: TornTail = %v", reopen, rep.TornTail)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(dead); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("headerless segment still on disk: %v", err)
	}
}

// TestCloseWaitsForInflightSync pins Close against a group-commit leader
// mid-fsync: Close must wait the leader out instead of closing the file
// under its Sync — the resulting "file already closed" would permanently
// poison a log whose records Close itself made durable.
func TestCloseWaitsForInflightSync(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	w.testSyncDelay = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	appendErr := make(chan error, 1)
	go func() { appendErr <- w.AppendAccepted(1, testSpec(1)) }()
	<-entered
	closeErr := make(chan error, 1)
	go func() { closeErr <- w.Close() }()
	// Give a buggy Close time to close the file out from under the parked
	// leader, then let the leader issue its fsync.
	time.Sleep(5 * time.Millisecond)
	close(release)
	if err := <-appendErr; err != nil {
		t.Fatalf("append racing Close: %v", err)
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("Close racing sync leader: %v", err)
	}
	w2, rep := openT(t, dir, 0)
	defer w2.Close()
	if len(rep.Unfinished) != 1 || rep.Unfinished[0].ID != 1 {
		t.Fatalf("record appended across Close race not replayed: %+v", rep)
	}
}

func TestReplayCorruptionInSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 256)
	for i := 1; i <= 8; i++ {
		if err := w.AppendAccepted(int64(i), testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := dataSegments(t, dir)
	if len(segs) < 2 {
		t.Fatalf("segments = %v, want several", segs)
	}
	// Corruption in a sealed (non-final) segment is not a torn tail; it
	// must fail the open loudly.
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x10
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, SegmentBytes: 256}); err == nil {
		t.Fatal("Open succeeded despite corruption in sealed segment")
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 1<<20)
	// Slow every fsync down so concurrent appenders reliably pile up
	// behind the sync leader: batching becomes observable, not a race.
	w.testSyncDelay = func() { time.Sleep(2 * time.Millisecond) }
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(g*per + i + 1)
				if err := w.AppendAccepted(id, testSpec(int(id))); err != nil {
					t.Errorf("AppendAccepted(%d): %v", id, err)
					return
				}
				if err := w.AppendCompleted(id, OutcomeDone); err != nil {
					t.Errorf("AppendCompleted(%d): %v", id, err)
				}
			}
		}(g)
	}
	wg.Wait()
	s := w.Stats()
	if want := int64(goroutines * per * 2); s.Appends != want {
		t.Fatalf("Appends = %d, want %d", s.Appends, want)
	}
	if s.Fsyncs >= s.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", s.Fsyncs, s.Appends)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, rep := openT(t, dir, 1<<20)
	defer w2.Close()
	if len(rep.Unfinished) != 0 {
		t.Fatalf("unfinished = %+v, want none", rep.Unfinished)
	}
	if rep.MaxID != goroutines*per {
		t.Fatalf("MaxID = %d, want %d", rep.MaxID, goroutines*per)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, _ := openT(t, t.TempDir(), 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAccepted(1, testSpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestAppendRecordAllocs(t *testing.T) {
	spec := testSpec(3)
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRecord(buf[:0], Record{Kind: KindAccepted, ID: 12345, Spec: spec})
	})
	if allocs != 0 {
		t.Fatalf("AppendRecord allocations = %v, want 0", allocs)
	}
}

func TestSegmentFileNaming(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := dataSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	var idx uint64
	if n, _ := fmt.Sscanf(filepath.Base(segs[0]), "wal-%016x.log", &idx); n != 1 || idx != 1 {
		t.Fatalf("first segment name %q, want wal-%016x.log", filepath.Base(segs[0]), 1)
	}
}
