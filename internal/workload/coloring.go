package workload

import (
	"fmt"

	"relaxsched/internal/algos/coloring"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

func init() {
	Register(Descriptor{
		Name:       "coloring",
		Kind:       Static,
		Brief:      "greedy graph coloring (first free color in priority order)",
		Input:      "undirected graph + random priority permutation",
		WastedWork: "extra iterations",
		New:        newColoring,
	})
}

func coloringOutput(colors []int32) Output {
	return &vecOutput[[]int32]{
		data:        colors,
		fingerprint: FingerprintInts(colors),
		summary:     fmt.Sprintf("colors used: %d", coloring.NumColors(colors)),
	}
}

func newColoring(g *graph.Graph, p Params) (Instance, error) {
	labels := core.RandomLabels(g.NumVertices(), rng.New(p.Seed))
	return &staticInstance{
		labels:  labels,
		problem: coloring.New(g),
		sequential: func() Output {
			return coloringOutput(coloring.Sequential(g, labels))
		},
		output: func(inst core.Instance) Output {
			return coloringOutput(inst.(*coloring.Instance).Colors())
		},
		verify: func(out Output) error {
			return coloring.Verify(g, out.(*vecOutput[[]int32]).data)
		},
	}, nil
}
