package workload_test

import (
	"fmt"

	"relaxsched/internal/graph"
	"relaxsched/internal/workload"
)

// Example shows the whole registry loop a CLI or harness runs: look a
// workload up by name, bind it to a graph, execute it in a mode, and check
// the result against the workload's own oracle.
func Example() {
	// A triangle with a pendant path: the triangle is the 2-core.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})

	d, err := workload.Lookup("kcore")
	if err != nil {
		panic(err)
	}
	res, err := d.RunMode(g, workload.RunConfig{
		Mode: workload.ModeRelaxed,
		K:    4, // MultiQueue relaxation factor
	}, workload.Params{Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := res.Instance.Verify(res.Output); err != nil {
		panic(err)
	}
	fmt.Printf("%s (%s, wasted work = %s)\n", d.Brief, d.Kind, d.WastedWork)
	fmt.Println(res.Output.Summary())
	// Output:
	// k-core decomposition (order-independent h-index fixpoint) (dynamic, wasted work = extra re-evaluations)
	// degeneracy: 2
}

// ExampleAll enumerates the registered workloads — the table behind
// `relaxrun -list` and the bench harness's -algo values.
func ExampleAll() {
	for _, d := range workload.All() {
		fmt.Printf("%-8s %s\n", d.Name, d.Kind)
	}
	// Output:
	// coloring static
	// kcore    dynamic
	// matching static
	// mis      static
	// pagerank dynamic
	// sssp     dynamic
}
