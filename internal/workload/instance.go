package workload

import (
	"relaxsched/internal/core"
	"relaxsched/internal/sched"
)

// vecOutput is the Output implementation shared by every workload: the raw
// result vector (retained so Verify can check it semantically), its
// fingerprint, and a prerendered summary line.
type vecOutput[T any] struct {
	data        T
	fingerprint uint64
	summary     string
}

func (o *vecOutput[T]) Fingerprint() uint64 { return o.fingerprint }
func (o *vecOutput[T]) Summary() string     { return o.summary }

// staticInstance adapts a static-framework workload — a core.Problem plus a
// priority permutation — to the Instance interface. The per-workload files
// supply only the closures that differ: the sequential baseline, the
// output/fingerprint extraction, and the semantic verifier.
type staticInstance struct {
	labels     []uint32
	problem    core.Problem
	sequential func() Output
	output     func(core.Instance) Output
	verify     func(Output) error
}

var _ Instance = (*staticInstance)(nil)

func (si *staticInstance) NumTasks() int         { return si.problem.NumTasks() }
func (si *staticInstance) RunSequential() Output { return si.sequential() }

// staticCost maps framework counters to the uniform Cost: the headline
// wasted-work metric is the paper's "extra iterations".
func staticCost(res core.Result) Cost {
	return Cost{
		Pops:       res.Iterations,
		StalePops:  res.FailedDeletes,
		Wasted:     res.ExtraIterations(),
		EmptyPolls: res.EmptyPolls,
	}
}

func (si *staticInstance) RunRelaxed(s sched.Scheduler) (Output, Cost, error) {
	res, err := core.RunRelaxed(si.problem, si.labels, s)
	if err != nil {
		return nil, Cost{}, err
	}
	return si.output(res.Instance), staticCost(res), nil
}

func (si *staticInstance) RunConcurrent(s sched.Concurrent, opts ConcOptions) (Output, Cost, error) {
	policy := opts.Policy
	if policy == 0 {
		policy = core.Reinsert
	}
	res, err := core.RunConcurrent(si.problem, si.labels, s, core.ConcurrentOptions{
		Workers:       opts.Workers,
		BlockedPolicy: policy,
		BatchSize:     opts.BatchSize,
		Cancel:        opts.Cancel,
		Tunable:       opts.Tunable,
	})
	if err != nil {
		return nil, Cost{}, err
	}
	return si.output(res.Instance), staticCost(res.Result), nil
}

func (si *staticInstance) Verify(out Output) error { return si.verify(out) }

func (si *staticInstance) Matches(reference, got Output) error {
	return fingerprintMatch("determinism", reference, got)
}

// dynamicInstance adapts a dynamic-priority workload to the Instance
// interface; the per-workload files supply the closures (which wrap the algo
// package's Run functions and map its stats to the uniform Cost).
type dynamicInstance struct {
	numTasks   int
	sequential func() Output
	relaxed    func(s sched.Scheduler) (Output, Cost, error)
	concurrent func(s sched.Concurrent, opts core.DynamicOptions) (Output, Cost, error)
	verify     func(Output) error
	// matches overrides the exactness fingerprint comparison for workloads
	// with approximate (tolerance-bounded) outputs; nil selects fingerprint
	// equality.
	matches func(reference, got Output) error
}

var _ Instance = (*dynamicInstance)(nil)

func (di *dynamicInstance) NumTasks() int         { return di.numTasks }
func (di *dynamicInstance) RunSequential() Output { return di.sequential() }

func (di *dynamicInstance) RunRelaxed(s sched.Scheduler) (Output, Cost, error) {
	return di.relaxed(s)
}

func (di *dynamicInstance) RunConcurrent(s sched.Concurrent, opts ConcOptions) (Output, Cost, error) {
	return di.concurrent(s, core.DynamicOptions{
		Workers:   opts.Workers,
		BatchSize: opts.BatchSize,
		Cancel:    opts.Cancel,
		Tunable:   opts.Tunable,
	})
}

func (di *dynamicInstance) Verify(out Output) error { return di.verify(out) }

func (di *dynamicInstance) Matches(reference, got Output) error {
	if di.matches != nil {
		return di.matches(reference, got)
	}
	return fingerprintMatch("exactness", reference, got)
}
