package workload

import (
	"fmt"

	"relaxsched/internal/algos/kcore"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

func init() {
	Register(Descriptor{
		Name:       "kcore",
		Kind:       Dynamic,
		Brief:      "k-core decomposition (order-independent h-index fixpoint)",
		Input:      "undirected graph",
		WastedWork: "extra re-evaluations",
		New:        newKCore,
	})
}

func kcoreOutput(cores []uint32) Output {
	return &vecOutput[[]uint32]{
		data:        cores,
		fingerprint: FingerprintInts(cores),
		summary:     fmt.Sprintf("degeneracy: %d", kcore.Degeneracy(cores)),
	}
}

func newKCore(g *graph.Graph, p Params) (Instance, error) {
	n := g.NumVertices()
	// The dirty-flag dedup keeps stale pops structurally zero; waste appears
	// as re-evaluations beyond the initial one per vertex.
	kcoreCost := func(st kcore.Stats) Cost {
		wasted := st.Pops - int64(n)
		if wasted < 0 {
			wasted = 0
		}
		return Cost{Pops: st.Pops, StalePops: st.StalePops, Wasted: wasted, EmptyPolls: st.EmptyPolls}
	}
	return &dynamicInstance{
		numTasks: n,
		sequential: func() Output {
			return kcoreOutput(kcore.Sequential(g))
		},
		relaxed: func(s sched.Scheduler) (Output, Cost, error) {
			cores, st, err := kcore.RunRelaxed(g, s)
			if err != nil {
				return nil, Cost{}, err
			}
			return kcoreOutput(cores), kcoreCost(st), nil
		},
		concurrent: func(s sched.Concurrent, opts core.DynamicOptions) (Output, Cost, error) {
			cores, st, err := kcore.RunConcurrent(g, s, opts)
			if err != nil {
				return nil, Cost{}, err
			}
			return kcoreOutput(cores), kcoreCost(st), nil
		},
		verify: func(out Output) error {
			return kcore.Verify(g, out.(*vecOutput[[]uint32]).data)
		},
	}, nil
}
