package workload

import (
	"fmt"

	"relaxsched/internal/algos/matching"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

func init() {
	Register(Descriptor{
		Name:       "matching",
		Kind:       Static,
		Brief:      "greedy maximal matching (MIS on the implicit line graph)",
		Input:      "undirected graph + random edge-priority permutation",
		WastedWork: "extra iterations",
		New:        newMatching,
	})
}

func matchingOutput(matched []bool) Output {
	return &vecOutput[[]bool]{
		data:        matched,
		fingerprint: FingerprintBools(matched),
		summary:     fmt.Sprintf("matching size: %d", matching.Size(matched)),
	}
}

func newMatching(g *graph.Graph, p Params) (Instance, error) {
	problem := matching.New(g) // builds the incidence structure once
	labels := core.RandomLabels(problem.NumTasks(), rng.New(p.Seed))
	return &staticInstance{
		labels:  labels,
		problem: problem,
		sequential: func() Output {
			return matchingOutput(matching.Sequential(g, labels))
		},
		output: func(inst core.Instance) Output {
			return matchingOutput(inst.(*matching.Instance).Matching())
		},
		verify: func(out Output) error {
			return matching.Verify(g, out.(*vecOutput[[]bool]).data)
		},
	}, nil
}
