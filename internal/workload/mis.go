package workload

import (
	"fmt"

	"relaxsched/internal/algos/mis"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
)

func init() {
	Register(Descriptor{
		Name:       "mis",
		Kind:       Static,
		Brief:      "greedy maximal independent set (the paper's Figure 2 workload)",
		Input:      "undirected graph + random priority permutation",
		WastedWork: "extra iterations",
		New:        newMIS,
	})
}

func misOutput(inSet []bool) Output {
	size := 0
	for _, in := range inSet {
		if in {
			size++
		}
	}
	return &vecOutput[[]bool]{
		data:        inSet,
		fingerprint: FingerprintBools(inSet),
		summary:     fmt.Sprintf("MIS size: %d", size),
	}
}

func newMIS(g *graph.Graph, p Params) (Instance, error) {
	labels := core.RandomLabels(g.NumVertices(), rng.New(p.Seed))
	return &staticInstance{
		labels:  labels,
		problem: mis.New(g),
		sequential: func() Output {
			return misOutput(mis.Sequential(g, labels))
		},
		output: func(inst core.Instance) Output {
			return misOutput(inst.(*mis.Instance).InSet())
		},
		verify: func(out Output) error {
			return mis.Verify(g, out.(*vecOutput[[]bool]).data)
		},
	}, nil
}
