package workload

// This file is the shared CLI plumbing: edge-list loading, flag validation
// and execution-mode dispatch. cmd/misrun, cmd/kcorerun and cmd/relaxrun
// used to hand-roll identical copies of this code; they now call LoadGraph,
// ValidateFlags and Descriptor.RunMode and keep only their flag definitions
// and output lines.

import (
	"context"
	"fmt"
	"os"
	"time"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/exactheap"
	"relaxsched/internal/sched/faaqueue"
	"relaxsched/internal/sched/multiqueue"
)

// Mode is a CLI execution mode.
type Mode int

const (
	// ModeSequential runs the optimized sequential baseline.
	ModeSequential Mode = iota + 1
	// ModeRelaxed runs the sequential-model relaxed scheduler (a MultiQueue
	// with a configurable relaxation factor).
	ModeRelaxed
	// ModeConcurrent runs worker goroutines over a concurrent MultiQueue.
	ModeConcurrent
	// ModeExact runs worker goroutines over an exact scheduler: the
	// fetch-and-add FIFO with the wait-on-predecessor policy for static
	// workloads, a coarse-locked exact heap for dynamic ones.
	ModeExact
)

// String returns the mode's CLI name.
func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModeRelaxed:
		return "relaxed"
	case ModeConcurrent:
		return "concurrent"
	case ModeExact:
		return "exact"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a CLI -mode value.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "sequential":
		return ModeSequential, nil
	case "relaxed":
		return ModeRelaxed, nil
	case "concurrent":
		return ModeConcurrent, nil
	case "exact":
		return ModeExact, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// LoadGraph opens and parses an edge-list file (see cmd/graphgen for the
// format), with the error wording shared by every CLI.
func LoadGraph(path string) (*graph.Graph, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening input: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("parsing input: %w", err)
	}
	return g, nil
}

// ValidateFlags checks the scheduler knobs every workload CLI exposes.
func ValidateFlags(k, threads, batch int) error {
	if k < 1 {
		return fmt.Errorf("invalid relaxation factor %d: -k must be at least 1", k)
	}
	if threads < 1 {
		return fmt.Errorf("invalid worker count %d: -threads must be at least 1", threads)
	}
	if batch < 0 {
		return fmt.Errorf("invalid batch size %d: -batch must be non-negative (0 = executor default)", batch)
	}
	return nil
}

// schedSeedSalt decorrelates the scheduler's random stream from the
// workload's own seed consumers (priority permutations, edge weights):
// RunMode derives both from the single user-facing Params.Seed.
const schedSeedSalt = 0x5eed5a17ed5eed5a

// RunConfig configures Descriptor.RunMode.
type RunConfig struct {
	// Mode selects the execution mode.
	Mode Mode
	// K is the relaxation factor (MultiQueue sub-queues) for ModeRelaxed.
	K int
	// Threads is the worker count for ModeConcurrent and ModeExact.
	Threads int
	// Batch is the executor batch size (0 = executor default).
	Batch int
	// QueueFactor is the number of concurrent MultiQueue sub-queues per
	// thread (0 selects multiqueue.DefaultQueueFactor).
	QueueFactor int
	// Tunable, when non-nil, supplies the executor batch size dynamically
	// for ModeConcurrent and ModeExact (overriding Batch); other modes
	// ignore it. relaxd's adaptive controller shares one across the worker
	// pool so in-flight executions follow its batch decisions.
	Tunable *core.TunableOptions
}

// RunResult is the outcome of Descriptor.RunMode.
type RunResult struct {
	// Output is the execution's result.
	Output Output
	// Cost is the execution's work accounting (zero for ModeSequential).
	Cost Cost
	// Elapsed is the wall-clock time of the run itself, excluding instance
	// construction and verification.
	Elapsed time.Duration
	// Instance is the bound instance, for follow-up Verify calls.
	Instance Instance
}

// RunMode binds the workload to a graph and executes it in the given mode,
// building the mode-appropriate scheduler: sequential baseline, MultiQueue
// (sequential-model or concurrent), or the exact scheduler matching the
// workload's executor family.
func (d *Descriptor) RunMode(g *graph.Graph, cfg RunConfig, p Params) (RunResult, error) {
	return d.RunModeContext(context.Background(), g, cfg, p)
}

// RunModeContext is RunMode with cancellation: when ctx is canceled, the
// call returns an error wrapping core.ErrCanceled and the partial state is
// discarded. How promptly a mode reacts differs:
//
//   - ModeConcurrent and ModeExact abort at the next batch boundary
//     (core's Cancel channel);
//   - ModeRelaxed winds down at the next scheduler pop (the scheduler is
//     wrapped to report empty once ctx is done);
//   - ModeSequential runs a plain algorithm loop on the caller's goroutine
//     — Go cannot preempt it, so it is checked only before the run starts
//     and a cancellation landing mid-run takes effect when it finishes.
//
// No mode holds goroutines a caller could orphan. relaxd uses this entry
// point to abort in-flight jobs on forced shutdown.
func (d *Descriptor) RunModeContext(ctx context.Context, g *graph.Graph, cfg RunConfig, p Params) (RunResult, error) {
	if cerr := ctx.Err(); cerr != nil {
		return RunResult{}, fmt.Errorf("workload: %w: %w", core.ErrCanceled, cerr)
	}
	if cfg.Batch < 0 {
		return RunResult{}, fmt.Errorf("invalid batch size %d: -batch must be non-negative (0 = executor default)", cfg.Batch)
	}
	inst, err := d.New(g, p)
	if err != nil {
		return RunResult{}, err
	}
	n := inst.NumTasks()
	qf := cfg.QueueFactor
	if qf <= 0 {
		qf = multiqueue.DefaultQueueFactor
	}

	res := RunResult{Instance: inst}
	start := time.Now()
	switch cfg.Mode {
	case ModeSequential:
		res.Output = inst.RunSequential()
	case ModeRelaxed:
		if cfg.K < 1 {
			return RunResult{}, fmt.Errorf("invalid relaxation factor %d: -k must be at least 1", cfg.K)
		}
		var s sched.Scheduler = multiqueue.NewSequential(cfg.K, n, rng.New(p.Seed^schedSeedSalt))
		if done := ctx.Done(); done != nil {
			s = cancelableScheduler{Scheduler: s, done: done}
		}
		res.Output, res.Cost, err = inst.RunRelaxed(s)
	case ModeConcurrent:
		if cfg.Threads < 1 {
			return RunResult{}, fmt.Errorf("invalid worker count %d: -threads must be at least 1", cfg.Threads)
		}
		mq := multiqueue.NewConcurrent(qf*cfg.Threads, n, p.Seed^schedSeedSalt)
		res.Output, res.Cost, err = inst.RunConcurrent(mq, ConcOptions{
			Workers:   cfg.Threads,
			BatchSize: cfg.Batch,
			Policy:    core.Reinsert,
			Cancel:    ctx.Done(),
			Tunable:   cfg.Tunable,
		})
		// Fold the MultiQueue's contention accounting into the uniform cost:
		// steals and global fallbacks exist only at the scheduler, not in the
		// executor's per-pop counters.
		mqs := mq.Stats()
		res.Cost.Steals = mqs.Steals
		res.Cost.GlobalFallbacks = mqs.GlobalFallbacks
	case ModeExact:
		if cfg.Threads < 1 {
			return RunResult{}, fmt.Errorf("invalid worker count %d: -threads must be at least 1", cfg.Threads)
		}
		var s sched.Concurrent
		policy := core.Reinsert
		if d.Kind == Static {
			// The paper's exact concurrent baseline: FIFO preloaded in
			// priority order plus the wait-on-predecessor backoff.
			s = faaqueue.New(n)
			policy = core.Wait
		} else {
			// Dynamic workloads re-insert with changed priorities, so the
			// exact baseline is a coarse-locked exact heap.
			s = sched.NewLocked(exactheap.New(n))
		}
		res.Output, res.Cost, err = inst.RunConcurrent(s, ConcOptions{
			Workers:   cfg.Threads,
			BatchSize: cfg.Batch,
			Policy:    policy,
			Cancel:    ctx.Done(),
			Tunable:   cfg.Tunable,
		})
	default:
		return RunResult{}, fmt.Errorf("unknown mode %q", cfg.Mode)
	}
	// A cancellation that landed mid-run dominates whatever the run itself
	// reported: a wound-down relaxed execution surfaces as ErrStuck (static)
	// or even a clean-but-partial result (dynamic), and all of it must be
	// discarded.
	if cerr := ctx.Err(); cerr != nil {
		return RunResult{}, fmt.Errorf("workload: %w: %w", core.ErrCanceled, cerr)
	}
	if err != nil {
		return RunResult{}, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// cancelableScheduler makes a sequential-model execution abortable: once
// the context's done channel closes, ApproxGetMin reports empty and the
// executor's run loop winds down at its next pop instead of draining the
// remaining items.
type cancelableScheduler struct {
	sched.Scheduler
	done <-chan struct{}
}

func (c cancelableScheduler) ApproxGetMin() (sched.Item, bool) {
	select {
	case <-c.done:
		return sched.Item{}, false
	default:
		return c.Scheduler.ApproxGetMin()
	}
}
