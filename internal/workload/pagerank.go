package workload

import (
	"fmt"

	"relaxsched/internal/algos/pagerank"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

func init() {
	Register(Descriptor{
		Name:       "pagerank",
		Kind:       Dynamic,
		Brief:      "residual-push PageRank (priority = pending residual mass)",
		Input:      "undirected graph (dangling vertices self-loop)",
		WastedWork: "stale pops + re-pushes",
		New:        newPageRank,
	})
}

func pagerankOutput(ranks []float64) Output {
	// Approximate output: no fingerprint — concurrent executions sum
	// residuals in nondeterministic order, so runs differ in the low bits
	// and comparisons go through the L1 bound in matches instead.
	return &vecOutput[[]float64]{
		data:    ranks,
		summary: fmt.Sprintf("rank mass: %.9f", pagerank.Sum(ranks)),
	}
}

func newPageRank(g *graph.Graph, p Params) (Instance, error) {
	opts := pagerank.Options{Damping: p.Damping, Tolerance: p.Tolerance}
	if opts.Damping == 0 {
		opts.Damping = pagerank.DefaultDamping
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = pagerank.DefaultTolerance
	}
	// Reject invalid knobs at binding time: RunSequential has no error path,
	// so a bad damping or tolerance must not survive past New.
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	prCost := func(st pagerank.Stats) Cost {
		return Cost{Pops: st.Pops, StalePops: st.StalePops, Wasted: st.Wasted(), EmptyPolls: st.EmptyPolls}
	}
	return &dynamicInstance{
		numTasks: g.NumVertices(),
		sequential: func() Output {
			ranks, err := pagerank.PowerIteration(g, opts)
			if err != nil {
				panic(err) // unreachable: opts validated at binding time
			}
			return pagerankOutput(ranks)
		},
		relaxed: func(s sched.Scheduler) (Output, Cost, error) {
			ranks, st, err := pagerank.RunRelaxed(g, s, opts)
			if err != nil {
				return nil, Cost{}, err
			}
			return pagerankOutput(ranks), prCost(st), nil
		},
		concurrent: func(s sched.Concurrent, dopts core.DynamicOptions) (Output, Cost, error) {
			ranks, st, err := pagerank.RunConcurrent(g, s, dopts, opts)
			if err != nil {
				return nil, Cost{}, err
			}
			return pagerankOutput(ranks), prCost(st), nil
		},
		verify: func(out Output) error {
			return pagerank.Verify(g, out.(*vecOutput[[]float64]).data, opts)
		},
		// Both outputs carry the push guarantee ‖π − p‖₁ ≤ Tolerance (and
		// the power-iteration reference is at least as accurate), so any two
		// results of this instance lie within 2·Tolerance of each other.
		matches: func(reference, got Output) error {
			a := reference.(*vecOutput[[]float64]).data
			b := got.(*vecOutput[[]float64]).data
			if len(a) != len(b) {
				return fmt.Errorf("workload: pagerank outputs have %d and %d ranks", len(a), len(b))
			}
			if d := pagerank.L1(a, b); d > 2*opts.Tolerance {
				return fmt.Errorf("workload: pagerank outputs differ by %v in L1, beyond the %v tolerance budget", d, 2*opts.Tolerance)
			}
			return nil
		},
	}, nil
}
