package workload

import (
	"fmt"
	"sync"
	"testing"

	"relaxsched/internal/graph"
)

// unregisterAfter removes a test-only registration when the test finishes,
// so later tests still see exactly the real workload set. Tests are
// in-package, so they may reach under the mutex; production code has no
// unregister path on purpose.
func unregisterAfter(t *testing.T, name string) {
	t.Cleanup(func() {
		registryMu.Lock()
		delete(registry, name)
		registryMu.Unlock()
	})
}

// TestRegistryConcurrentUse hammers Register, Lookup, Names and All from
// many goroutines at once. Run under -race (the workload package is part of
// `make race`) this checks the registry mutex: before it existed, a service
// handler calling Lookup while another workload registered was a data race
// on the map.
func TestRegistryConcurrentUse(t *testing.T) {
	newInst := func(g *graph.Graph, p Params) (Instance, error) { return nil, nil }
	const writers, readers, lookups = 8, 8, 200
	for w := 0; w < writers; w++ {
		unregisterAfter(t, fmt.Sprintf("race-dummy-%d", w))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			Register(Descriptor{
				Name:       fmt.Sprintf("race-dummy-%d", w),
				Kind:       Static,
				Brief:      "registry race test dummy",
				Input:      "none",
				WastedWork: "none",
				New:        newInst,
			})
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				if _, err := Lookup("mis"); err != nil {
					t.Errorf("Lookup(mis): %v", err)
					return
				}
				names := Names()
				for j := 1; j < len(names); j++ {
					if names[j-1] >= names[j] {
						t.Errorf("Names() not sorted: %v", names)
						return
					}
				}
				// Names and All are separate snapshots (writers may land in
				// between), so check All's own invariant: sorted, no gaps.
				ds := All()
				for j := 1; j < len(ds); j++ {
					if ds[j-1].Name >= ds[j].Name {
						t.Errorf("All() not sorted by name")
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Every concurrent registration must have landed exactly once, and the
	// listing order must be deterministic (sorted) regardless of the
	// interleaving above.
	names := Names()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for w := 0; w < writers; w++ {
		if !seen[fmt.Sprintf("race-dummy-%d", w)] {
			t.Fatalf("registration race-dummy-%d lost; registry holds %v", w, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("final Names() not sorted: %v", names)
		}
	}
}

// TestRegisterDuplicateUnderConcurrency: exactly one of two racing
// registrations of the same name wins; the other panics. The panic must not
// leave the mutex held (a deferred unlock), so the registry stays usable.
func TestRegisterDuplicateUnderConcurrency(t *testing.T) {
	newInst := func(g *graph.Graph, p Params) (Instance, error) { return nil, nil }
	d := Descriptor{Name: "race-duplicate", Kind: Static, Brief: "b", Input: "i", WastedWork: "w", New: newInst}
	unregisterAfter(t, d.Name)

	var panics, successes int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				defer mu.Unlock()
				if recover() != nil {
					panics++
				} else {
					successes++
				}
			}()
			Register(d)
		}()
	}
	wg.Wait()
	if successes != 1 || panics != 3 {
		t.Fatalf("got %d successes and %d panics, want exactly 1 registration to win", successes, panics)
	}
	// The registry must still be fully usable after the panics.
	if _, err := Lookup("race-duplicate"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("mis"); err != nil {
		t.Fatal(err)
	}
}
