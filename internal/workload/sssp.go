package workload

import (
	"fmt"

	"relaxsched/internal/algos/sssp"
	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

func init() {
	Register(Descriptor{
		Name:       "sssp",
		Kind:       Dynamic,
		Brief:      "single-source shortest paths (optional Δ-stepping bucketing)",
		Input:      "undirected graph + random edge weights in [1, 100]",
		WastedWork: "stale pops",
		New:        newSSSP,
	})
}

// weightSeedSalt keeps the derived edge-weight stream independent of the
// other seed consumers (it predates the registry; keeping it preserves the
// bench trajectory).
const weightSeedSalt = 0x9e3779b97f4a7c15

// FirstNonIsolated returns the lowest-numbered vertex with at least one
// neighbor (0 for an empty or edgeless graph) — a deterministic
// shortest-path source that is never trivially unreachable from everything.
func FirstNonIsolated(g *graph.Graph) int {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 {
			return v
		}
	}
	return 0
}

func ssspOutput(dist []uint32) Output {
	reached := 0
	for _, d := range dist {
		if d != sssp.Unreachable {
			reached++
		}
	}
	return &vecOutput[[]uint32]{
		data:        dist,
		fingerprint: FingerprintInts(dist),
		summary:     fmt.Sprintf("reached: %d", reached),
	}
}

func newSSSP(g *graph.Graph, p Params) (Instance, error) {
	delta := p.Delta
	if delta == 0 {
		delta = 1
	}
	w, err := graph.RandomWeights(g, 100, p.Seed^weightSeedSalt)
	if err != nil {
		return nil, fmt.Errorf("workload: generating sssp weights: %w", err)
	}
	src := p.Source
	if src < 0 {
		src = FirstNonIsolated(g)
	}
	if n := g.NumVertices(); n > 0 && src >= n {
		return nil, fmt.Errorf("workload: sssp source %d out of range [0,%d)", src, n)
	}
	ssspCost := func(st sssp.Stats) Cost {
		return Cost{Pops: st.Pops, StalePops: st.StalePops, Wasted: st.StalePops, EmptyPolls: st.EmptyPolls}
	}
	return &dynamicInstance{
		numTasks: g.NumVertices(),
		sequential: func() Output {
			dist, err := sssp.Dijkstra(g, w, src)
			if err != nil {
				panic(err) // src validated above
			}
			return ssspOutput(dist)
		},
		relaxed: func(s sched.Scheduler) (Output, Cost, error) {
			dist, st, err := sssp.RunRelaxedDelta(g, w, src, s, delta)
			if err != nil {
				return nil, Cost{}, err
			}
			return ssspOutput(dist), ssspCost(st), nil
		},
		concurrent: func(s sched.Concurrent, opts core.DynamicOptions) (Output, Cost, error) {
			dist, st, err := sssp.RunConcurrentDelta(g, w, src, s, delta, opts)
			if err != nil {
				return nil, Cost{}, err
			}
			return ssspOutput(dist), ssspCost(st), nil
		},
		verify: func(out Output) error {
			return sssp.Verify(g, w, src, out.(*vecOutput[[]uint32]).data)
		},
	}, nil
}
