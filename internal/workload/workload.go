// Package workload is the registry that ties the repository's algorithms to
// its executors, schedulers, CLIs and benchmark harness.
//
// Every algorithm the repository can run under a scheduler — the static
// framework workloads (MIS, coloring, matching) and the dynamic-priority
// workloads (SSSP, k-core, PageRank) — registers one Descriptor here, in its
// own file of this package. A Descriptor names the workload, states which
// executor family drives it, describes its input and wasted-work metric, and
// knows how to bind itself to a graph. Everything downstream — cmd/misrun,
// cmd/kcorerun, cmd/relaxrun, cmd/relaxbench and internal/bench — dispatches
// through the registry instead of hand-rolled per-algorithm switches, so
// adding workload #7 is one new file in this package (see ARCHITECTURE.md
// for the walkthrough).
//
// The two executor families behind Kind:
//
//   - Static: a fixed task set under a static priority permutation, driven
//     by core.RunRelaxed / core.RunConcurrent. Output is bit-identical to
//     the sequential algorithm's regardless of scheduler relaxation; wasted
//     work appears as failed deletes and dead skips.
//   - Dynamic: tasks carry mutable priorities and generate work at runtime,
//     driven by core.RunDynamic / core.RunDynamicConcurrent. Exactness comes
//     from the problem's monotone state updates; wasted work appears as
//     stale pops and re-evaluations.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/sched"
)

// Kind classifies which executor family drives a workload.
type Kind int

const (
	// Static marks fixed-task-set workloads executed by the framework
	// (core.RunConcurrent) under a static priority permutation.
	Static Kind = iota + 1
	// Dynamic marks mutable-priority workloads executed by the dynamic
	// engine (core.RunDynamicConcurrent).
	Dynamic
)

// String returns "static" or "dynamic".
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Params carries the per-workload knobs the CLIs and the bench harness
// expose. Zero values select workload defaults; workloads ignore knobs that
// do not apply to them.
type Params struct {
	// Seed drives every randomized input the workload derives from the
	// graph: priority permutations, edge weights, scheduler tie-breaking.
	Seed uint64
	// Delta is the Δ-stepping bucket width for sssp priorities (0 or 1 keep
	// exact distances).
	Delta uint32
	// Damping is the PageRank damping factor (0 selects the default 0.85).
	Damping float64
	// Tolerance is the PageRank target L1 error (0 selects the default
	// 1e-9). Explicitly negative or otherwise invalid values are rejected by
	// the pagerank workload rather than silently defaulted.
	Tolerance float64
	// Source is the sssp source vertex; negative selects the first
	// non-isolated vertex.
	Source int
}

// Cost is the uniform work accounting of one scheduler-driven execution.
type Cost struct {
	// Pops is the number of scheduler deliveries.
	Pops int64
	// StalePops is the number of deliveries dropped without useful work
	// (blocked-task failed deletes for static workloads, stale items for
	// dynamic ones).
	StalePops int64
	// Wasted is the workload's headline wasted-work metric, labeled by
	// Descriptor.WastedWork: extra iterations for the static framework,
	// stale pops for sssp, extra re-evaluations for kcore, stale pops +
	// re-pushes for pagerank.
	Wasted int64
	// EmptyPolls is the number of scheduler polls that found nothing while
	// work remained (concurrent executions only).
	EmptyPolls int64
	// Steals and GlobalFallbacks are the concurrent MultiQueue's contention
	// accounting (multiqueue.Stats): pops served from another worker's
	// shard, and affine pops that fell through to global two-choice
	// sampling. Zero outside ModeConcurrent.
	Steals          int64
	GlobalFallbacks int64
}

// ConcOptions configures Instance.RunConcurrent.
type ConcOptions struct {
	// Workers is the number of goroutines processing tasks (at least 1).
	Workers int
	// BatchSize is the executor batch size (0 selects the executor default).
	BatchSize int
	// Policy selects how static workloads handle a task delivered while
	// blocked (0 selects core.Reinsert, the relaxed-scheduler default).
	// Dynamic workloads ignore it.
	Policy core.Policy
	// Cancel, when non-nil, aborts the execution when closed (a context's
	// Done channel fits directly); the run then returns core.ErrCanceled.
	// Long-running services use it to abort in-flight jobs on shutdown.
	Cancel <-chan struct{}
	// Tunable, when non-nil, supplies the executor batch size dynamically
	// (overriding BatchSize): workers re-read it every batch episode, which
	// is how relaxd's adaptive controller retunes in-flight executions.
	Tunable *core.TunableOptions
}

// Output is the result of one execution of a workload.
type Output interface {
	// Fingerprint is an order-sensitive hash of the output, used by exact
	// workloads to compare runs cheaply. Approximate workloads (pagerank)
	// return 0 and compare through Instance.Matches instead.
	Fingerprint() uint64
	// Summary is a one-line human-readable account of the output, e.g.
	// "MIS size: 123" or "degeneracy: 54".
	Summary() string
}

// Instance is a workload bound to one input graph (plus whatever derived
// inputs — permutations, weights — its Descriptor.New produced).
type Instance interface {
	// NumTasks returns the size of the scheduler's task-id space: vertices
	// for the vertex workloads, edges for matching. Callers size concurrent
	// schedulers with it.
	NumTasks() int
	// RunSequential executes the optimized sequential baseline and returns
	// its output — also the reference for Matches.
	RunSequential() Output
	// RunRelaxed executes under a (possibly relaxed) sequential-model
	// scheduler.
	RunRelaxed(s sched.Scheduler) (Output, Cost, error)
	// RunConcurrent executes under a concurrent scheduler with worker
	// goroutines.
	RunConcurrent(s sched.Concurrent, opts ConcOptions) (Output, Cost, error)
	// Verify checks an output against the workload's exactness oracle
	// (recomputing it if needed): greedy-sequential equality for the static
	// workloads, Dijkstra/peeling oracles for sssp and kcore, the
	// power-iteration oracle within tolerance for pagerank.
	Verify(out Output) error
	// Matches is the cheap per-trial check the bench harness runs: it
	// compares an execution's output against a reference output of the same
	// instance (fingerprint equality for exact workloads, an L1 bound for
	// pagerank).
	Matches(reference, got Output) error
}

// Descriptor describes one registered workload.
type Descriptor struct {
	// Name is the registry key, as used by -algo / -workload flags.
	Name string
	// Kind states which executor family drives the workload.
	Kind Kind
	// Brief is a one-line description for CLI listings.
	Brief string
	// Input describes what the workload consumes beyond the graph itself.
	Input string
	// WastedWork labels the Cost.Wasted metric, e.g. "extra iterations".
	WastedWork string
	// New binds the workload to a graph, deriving auxiliary inputs (priority
	// permutations, edge weights, tolerances) from p. Callers size
	// schedulers with the bound Instance's NumTasks.
	New func(g *graph.Graph, p Params) (Instance, error)
}

// The registry is guarded by a mutex: registration normally happens from
// this package's init functions, but long-running services (relaxd) call
// Lookup/Names/All from request handlers concurrently, and nothing stops a
// future workload from registering lazily from a non-init path.
var (
	registryMu sync.RWMutex
	registry   = make(map[string]*Descriptor)
)

// Register adds a workload descriptor to the registry. It panics on a
// duplicate or empty name or a descriptor missing its constructors —
// registration happens from init functions in this package, so a bad
// descriptor is a programming error, not an input error. Register is safe
// for concurrent use with itself and with Lookup/Names/All.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("workload: Register called with an empty name")
	}
	if d.New == nil {
		panic(fmt.Sprintf("workload: descriptor %q is missing its New constructor", d.Name))
	}
	if d.Kind != Static && d.Kind != Dynamic {
		panic(fmt.Sprintf("workload: descriptor %q has invalid kind %d", d.Name, d.Kind))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("workload: Register called twice for %q", d.Name))
	}
	stored := d
	registry[d.Name] = &stored
}

// Lookup returns the named workload's descriptor.
func Lookup(name string) (*Descriptor, error) {
	registryMu.RLock()
	d, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (known: %v)", name, Names())
	}
	return d, nil
}

// Names returns the registered workload names, in sorted (deterministic)
// order regardless of registration order.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// All returns the registered descriptors, sorted by name.
func All() []*Descriptor {
	names := Names()
	registryMu.RLock()
	defer registryMu.RUnlock()
	all := make([]*Descriptor, 0, len(names))
	for _, name := range names {
		if d, ok := registry[name]; ok {
			all = append(all, d)
		}
	}
	return all
}

// FingerprintBools computes an order-sensitive FNV-1a fingerprint of a bool
// vector (MIS membership, matching membership).
func FingerprintBools(xs []bool) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range xs {
		var b uint64
		if x {
			b = 1
		}
		h = (h ^ b) * 1099511628211
	}
	return h
}

// FingerprintInts computes an order-sensitive FNV-1a fingerprint of an
// integer vector (colors, distances, core numbers).
func FingerprintInts[T int32 | uint32](xs []T) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range xs {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	return h
}

// fingerprintMatch is the Matches implementation of the exact workloads:
// equal fingerprints or an error naming the guarantee that broke.
func fingerprintMatch(guarantee string, reference, got Output) error {
	if reference.Fingerprint() != got.Fingerprint() {
		return fmt.Errorf("workload: output differs from the sequential output (%s violation)", guarantee)
	}
	return nil
}
