package workload

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"relaxsched/internal/core"
	"relaxsched/internal/graph"
	"relaxsched/internal/rng"
	"relaxsched/internal/sched"
	"relaxsched/internal/sched/multiqueue"
)

func TestRegistryHoldsAllSixWorkloads(t *testing.T) {
	want := []string{"coloring", "kcore", "matching", "mis", "pagerank", "sssp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry holds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry holds %v, want %v", got, want)
		}
	}
	for _, d := range All() {
		if d.Brief == "" || d.Input == "" || d.WastedWork == "" {
			t.Fatalf("descriptor %q is missing documentation fields: %+v", d.Name, d)
		}
		if d.Kind != Static && d.Kind != Dynamic {
			t.Fatalf("descriptor %q has invalid kind %v", d.Name, d.Kind)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	if _, err := Lookup("galactic"); err == nil {
		t.Fatal("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "galactic") {
		t.Fatalf("error does not name the workload: %v", err)
	}
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	newInst := func(g *graph.Graph, p Params) (Instance, error) { return nil, nil }
	cases := map[string]Descriptor{
		"duplicate name": {Name: "mis", Kind: Static, New: newInst},
		"empty name":     {Kind: Static, New: newInst},
		"missing New":    {Name: "fresh1", Kind: Static},
		"invalid kind":   {Name: "fresh2", New: newInst},
	}
	for name, d := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register accepted bad descriptor %+v", d)
				}
			}()
			Register(d)
		})
	}
	// None of the rejected descriptors may have leaked into the registry.
	for _, leaked := range []string{"fresh1", "fresh2", ""} {
		if _, err := Lookup(leaked); err == nil {
			t.Fatalf("rejected descriptor %q leaked into the registry", leaked)
		}
	}
}

func TestKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatalf("kind strings: %v, %v", Static, Dynamic)
	}
}

// TestEveryWorkloadThroughEveryMode is the registry's end-to-end smoke: all
// six workloads run in all four modes on one small graph, every output
// passes the workload's own oracle, and Matches accepts outputs of the same
// instance.
func TestEveryWorkloadThroughEveryMode(t *testing.T) {
	g, err := graph.GNM(400, 2000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range All() {
		inst, err := d.New(g, Params{Seed: 5, Source: -1})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if n := inst.NumTasks(); n <= 0 {
			t.Fatalf("%s: NumTasks = %d", d.Name, n)
		}
		reference := inst.RunSequential()
		if reference.Summary() == "" {
			t.Fatalf("%s: empty summary", d.Name)
		}
		if err := inst.Verify(reference); err != nil {
			t.Fatalf("%s: sequential output fails its own oracle: %v", d.Name, err)
		}
		for _, mode := range []Mode{ModeSequential, ModeRelaxed, ModeConcurrent, ModeExact} {
			res, err := d.RunMode(g, RunConfig{Mode: mode, K: 8, Threads: 2}, Params{Seed: 5, Source: -1})
			if err != nil {
				t.Fatalf("%s/%s: %v", d.Name, mode, err)
			}
			if err := res.Instance.Verify(res.Output); err != nil {
				t.Fatalf("%s/%s: %v", d.Name, mode, err)
			}
			if err := inst.Matches(reference, res.Output); err != nil {
				// Outputs of distinct instances are comparable here because
				// both were built from the same graph, seed and params.
				t.Fatalf("%s/%s: %v", d.Name, mode, err)
			}
			if mode != ModeSequential && res.Cost.Pops == 0 {
				t.Fatalf("%s/%s: no pops recorded", d.Name, mode)
			}
		}
	}
}

func TestRunModeRejectsBadConfig(t *testing.T) {
	g := graph.Path(10)
	d, err := Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]RunConfig{
		"zero k relaxed":     {Mode: ModeRelaxed, K: 0},
		"zero threads conc":  {Mode: ModeConcurrent, Threads: 0, K: 1},
		"zero threads exact": {Mode: ModeExact, Threads: 0, K: 1},
		"negative batch":     {Mode: ModeConcurrent, Threads: 1, K: 1, Batch: -1},
		"unknown mode":       {Mode: Mode(99), Threads: 1, K: 1},
	}
	for name, cfg := range cases {
		if _, err := d.RunMode(g, cfg, Params{}); err == nil {
			t.Fatalf("%s: accepted %+v", name, cfg)
		}
	}
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]Mode{
		"sequential": ModeSequential,
		"relaxed":    ModeRelaxed,
		"concurrent": ModeConcurrent,
		"exact":      ModeExact,
	} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("Mode.String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestParseModeErrorPaths covers the parse failures only the CLIs used to
// exercise: empty string, case sensitivity, whitespace, and near-misses.
func TestParseModeErrorPaths(t *testing.T) {
	for _, bad := range []string{"", "Sequential", " relaxed", "exact ", "concurrnet", "mode(1)"} {
		if m, err := ParseMode(bad); err == nil {
			t.Fatalf("ParseMode(%q) accepted as %v", bad, m)
		} else if !strings.Contains(err.Error(), "unknown mode") {
			t.Fatalf("ParseMode(%q) error does not say unknown mode: %v", bad, err)
		}
	}
	if s := Mode(0).String(); !strings.Contains(s, "mode(0)") {
		t.Fatalf("zero Mode renders as %q", s)
	}
}

// TestValidateFlagsBoundaries pins the exact boundaries: k and threads
// reject everything below 1 (including negatives), batch rejects only
// negatives (0 selects the executor default).
func TestValidateFlagsBoundaries(t *testing.T) {
	cases := []struct {
		k, threads, batch int
		ok                bool
	}{
		{1, 1, 0, true},
		{1, 1, 1, true},
		{1024, 64, 4096, true},
		{0, 1, 0, false},
		{-3, 1, 0, false},
		{1, 0, 0, false},
		{1, -8, 0, false}, // negative workers
		{1, 1, -1, false},
	}
	for _, c := range cases {
		err := ValidateFlags(c.k, c.threads, c.batch)
		if (err == nil) != c.ok {
			t.Fatalf("ValidateFlags(%d, %d, %d) = %v, want ok=%v", c.k, c.threads, c.batch, err, c.ok)
		}
		if err != nil && !strings.Contains(err.Error(), "invalid") {
			t.Fatalf("ValidateFlags(%d, %d, %d) error is unlabeled: %v", c.k, c.threads, c.batch, err)
		}
	}
}

// TestPageRankToleranceBoundaries: tolerance 0 selects the default, any
// explicit non-positive or non-finite value is rejected at binding time.
func TestPageRankToleranceBoundaries(t *testing.T) {
	g := graph.Path(10)
	d, err := Lookup("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	for _, tol := range []float64{1e-300, 1e-9, 0.5} {
		if _, err := d.New(g, Params{Tolerance: tol}); err != nil {
			t.Fatalf("tolerance %v rejected: %v", tol, err)
		}
	}
	for _, tol := range []float64{-1, -1e-300, math.Inf(1), math.NaN()} {
		if _, err := d.New(g, Params{Tolerance: tol}); err == nil {
			t.Fatalf("tolerance %v accepted", tol)
		}
	}
}

// TestRunModeContextCancel: a canceled context aborts a concurrent-mode run
// with core.ErrCanceled (pre-canceled contexts never even bind the
// instance), and a live context leaves RunModeContext identical to RunMode.
func TestRunModeContextCancel(t *testing.T) {
	g, err := graph.GNM(2000, 8000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{ModeSequential, ModeRelaxed, ModeConcurrent, ModeExact} {
		_, err := d.RunModeContext(canceled, g, RunConfig{Mode: mode, K: 4, Threads: 2}, Params{Seed: 1})
		// The documented contract: every cancellation path wraps
		// core.ErrCanceled, with the context's own error attached.
		if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: pre-canceled context gave %v", mode, err)
		}
	}
	res, err := d.RunModeContext(context.Background(), g, RunConfig{Mode: ModeConcurrent, Threads: 2}, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Instance.Verify(res.Output); err != nil {
		t.Fatal(err)
	}
}

// TestRunModeContextAbortsInFlight cancels while an execution is running
// and expects an error wrapping core.ErrCanceled, not a hang and not a
// clean result — for the concurrent engine (abort at a batch boundary) and
// the relaxed sequential-model path (scheduler wrapper winds the run
// down). The graph is big enough that the run cannot finish before the
// cancellation lands (cancel fires after the first pops).
func TestRunModeContextAbortsInFlight(t *testing.T) {
	g, err := graph.GNM(50_000, 200_000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Lookup("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []RunConfig{
		{Mode: ModeConcurrent, Threads: 2, Batch: 1},
		{Mode: ModeRelaxed, K: 8},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, err = d.RunModeContext(ctx, g, cfg, Params{Seed: 1, Tolerance: 1e-12})
		cancel()
		if err == nil {
			// The run won the race; that is legal, just unhelpful — only a
			// genuinely wrong error value fails the test.
			t.Logf("%s execution finished before cancellation landed", cfg.Mode)
			continue
		}
		if !errors.Is(err, core.ErrCanceled) && !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: aborted run returned %v, want core.ErrCanceled or context.Canceled", cfg.Mode, err)
		}
	}
}

// TestCancelableSchedulerWindsDown pins the wrapper's contract directly: a
// closed done channel makes the scheduler report empty no matter how many
// items it holds, and a live one is transparent.
func TestCancelableSchedulerWindsDown(t *testing.T) {
	inner := multiqueue.NewSequential(2, 8, rng.New(1))
	inner.Insert(sched.Item{Task: 1, Priority: 1})
	done := make(chan struct{})
	cs := cancelableScheduler{Scheduler: inner, done: done}
	if it, ok := cs.ApproxGetMin(); !ok || it.Task != 1 {
		t.Fatalf("live wrapper pop = %v, %v", it, ok)
	}
	inner.Insert(sched.Item{Task: 2, Priority: 2})
	close(done)
	if _, ok := cs.ApproxGetMin(); ok {
		t.Fatal("canceled wrapper still dispenses items")
	}
	if inner.Empty() {
		t.Fatal("wrapper drained the inner scheduler")
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := LoadGraph(""); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := LoadGraph("/does/not/exist"); err == nil {
		t.Fatal("nonexistent path accepted")
	}
}

func TestValidateFlags(t *testing.T) {
	if err := ValidateFlags(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	for name, args := range map[string][3]int{
		"zero k":         {0, 1, 0},
		"zero threads":   {1, 0, 0},
		"negative batch": {1, 1, -1},
	} {
		if err := ValidateFlags(args[0], args[1], args[2]); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestFingerprintHelpers(t *testing.T) {
	if FingerprintBools([]bool{true, false}) == FingerprintBools([]bool{false, true}) {
		t.Fatal("FingerprintBools is order-insensitive")
	}
	if FingerprintInts([]int32{1, 2}) == FingerprintInts([]int32{2, 1}) {
		t.Fatal("FingerprintInts is order-insensitive")
	}
	if FingerprintBools(nil) != FingerprintBools([]bool{}) {
		t.Fatal("empty fingerprints differ")
	}
}

func TestPageRankParamsValidation(t *testing.T) {
	g := graph.Path(10)
	d, err := Lookup("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.New(g, Params{Tolerance: -1e-9}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	if _, err := d.New(g, Params{Damping: 1.5}); err == nil {
		t.Fatal("damping above 1 accepted")
	}
	// Zero selects the documented defaults.
	if _, err := d.New(g, Params{}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPParamsValidation(t *testing.T) {
	g := graph.Path(10)
	d, err := Lookup("sssp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.New(g, Params{Source: 10}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	inst, err := d.New(g, Params{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(inst.RunSequential()); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesDetectsDivergence(t *testing.T) {
	g, err := graph.GNM(200, 800, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.New(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.New(g, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Different permutations give different greedy MIS outputs, which
	// Matches must flag as a determinism violation.
	if err := a.Matches(a.RunSequential(), b.RunSequential()); err == nil {
		t.Fatal("Matches accepted outputs of different permutations")
	}
}
