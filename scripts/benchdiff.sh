#!/usr/bin/env sh
# benchdiff.sh — old-vs-new benchmark diff over the repository's pinned
# hot-path benchmark set, with a regression gate.
#
# Usage:
#   scripts/benchdiff.sh [base-ref]
#
# The base ref (default: origin/main, falling back to HEAD when origin/main
# does not resolve) is checked out into a throwaway git worktree and the
# pinned benchmarks run there ("old") and in the current working tree
# ("new"). Results land in $BENCHDIFF_DIR/{old,new}.txt. When benchstat is
# installed (CI installs it; `make benchdiff` degrades gracefully without
# it), its statistical comparison is printed; the pass/fail gate itself uses
# a built-in mean comparator so the script has no dependencies beyond the go
# toolchain.
#
# Gate: a pinned benchmark present in BOTH trees whose mean ns/op grew by
# more than BENCHDIFF_MAX_REGRESSION (default 0.25, i.e. 25%) fails the
# script. Benchmarks that exist only in the new tree are reported and pass
# trivially — a new benchmark has no baseline to regress against.
#
# Environment:
#   BENCHDIFF_BASE            base ref (overridden by argv[1])
#   BENCHDIFF_MAX_REGRESSION  fractional ns/op growth tolerated (default 0.25)
#   BENCHDIFF_DIR             output directory (default /tmp/relaxsched-benchdiff)
#   BENCHDIFF_COUNT           samples per micro benchmark (default 5)
#   BENCHDIFF_MACRO_COUNT     samples per macro benchmark (default 3)
#
# The pinned set mirrors the hot paths this repository optimizes:
#   - exactheap insert/pop churn (the storage under every heap-backed family,
#     including each MultiQueue sub-queue)
#   - multiqueue scheduler churn (global and worker-affine handle paths)
#   - concurrent SSSP on the dynamic engine (1 worker: pure hot-loop cost)
#   - concurrent PageRank residual pushes (1 worker)
# One-worker macro variants are pinned because CI containers have one CPU;
# see EXPERIMENTS.md "Profiling methodology". The gate compares per-benchmark
# MEDIANS, not means — shared CI boxes throw occasional 2x outlier samples
# and a median-of-5 shrugs those off.

set -eu

BASE_REF="${1:-${BENCHDIFF_BASE:-origin/main}}"
MAX_REGRESSION="${BENCHDIFF_MAX_REGRESSION:-0.25}"
OUT_DIR="${BENCHDIFF_DIR:-/tmp/relaxsched-benchdiff}"
COUNT="${BENCHDIFF_COUNT:-5}"
MACRO_COUNT="${BENCHDIFF_MACRO_COUNT:-3}"

REPO_ROOT="$(git rev-parse --show-toplevel)"
cd "$REPO_ROOT"

if ! git rev-parse --verify --quiet "$BASE_REF^{commit}" >/dev/null; then
    echo "benchdiff: base ref '$BASE_REF' does not resolve; falling back to HEAD" >&2
    BASE_REF=HEAD
fi
BASE_SHA="$(git rev-parse --short "$BASE_REF^{commit}")"

mkdir -p "$OUT_DIR"
OLD_TREE="$OUT_DIR/base-tree"
trap 'git worktree remove --force "$OLD_TREE" >/dev/null 2>&1 || true' EXIT
git worktree remove --force "$OLD_TREE" >/dev/null 2>&1 || true
git worktree add --quiet --force --detach "$OLD_TREE" "$BASE_REF"

# run_benches <tree-dir> <output-file>
# Runs the pinned set in one tree. A benchmark regex that matches nothing
# (e.g. a benchmark that does not exist at the base ref yet) produces no
# lines and no error, which is exactly the new-only case the gate tolerates.
run_benches() {
    tree="$1"
    out="$2"
    : >"$out"
    (
        cd "$tree"
        go test -run '^$' -benchmem -count "$COUNT" \
            -bench 'BenchmarkInsertDelete$' ./internal/sched/exactheap/
        go test -run '^$' -benchmem -count "$COUNT" \
            -bench 'BenchmarkConcurrentInsertDelete$|BenchmarkWorkerHandle' \
            ./internal/sched/multiqueue/
        [ -d internal/algos/sssp ] && go test -run '^$' -benchtime 1x -count "$MACRO_COUNT" \
            -bench 'BenchmarkConcurrentSSSP/workers=1$' ./internal/algos/sssp/
        [ -d internal/algos/pagerank ] && go test -run '^$' -benchtime 1x -count "$MACRO_COUNT" \
            -bench 'BenchmarkConcurrentPageRank/workers=1$' ./internal/algos/pagerank/
    ) | tee "$out.raw" | grep -E '^Benchmark' >"$out" || true
}

# Fail loudly on a broken build in either tree, instead of letting an empty
# result file pass the gate as "new-only".
(cd "$OLD_TREE" && go build ./...)
go build ./...

echo "benchdiff: running pinned benchmarks at base $BASE_REF ($BASE_SHA)..."
run_benches "$OLD_TREE" "$OUT_DIR/old.txt"
echo "benchdiff: running pinned benchmarks in the working tree..."
run_benches "$REPO_ROOT" "$OUT_DIR/new.txt"

echo
if command -v benchstat >/dev/null 2>&1; then
    benchstat "$OUT_DIR/old.txt" "$OUT_DIR/new.txt" || true
else
    echo "benchdiff: benchstat not installed; raw results in $OUT_DIR (CI prints the benchstat table)"
fi
echo

# The gate: compare median ns/op per benchmark name. FILENAME-keyed so an
# empty old.txt cannot silently shift the new results into the baseline.
awk -v maxreg="$MAX_REGRESSION" '
function median(vals, n,    i, j, tmp) {
    # insertion-sort the n values in place, return the middle one
    for (i = 2; i <= n; i++) {
        tmp = vals[i]
        for (j = i - 1; j >= 1 && vals[j] > tmp; j--) vals[j + 1] = vals[j]
        vals[j + 1] = tmp
    }
    if (n % 2) return vals[(n + 1) / 2]
    return (vals[n / 2] + vals[n / 2 + 1]) / 2
}
FILENAME == ARGV[1] {
    if ($4 == "ns/op") { ocnt[$1]++; oval[$1 "/" ocnt[$1]] = $3 }
    next
}
$4 == "ns/op" { ncnt[$1]++; nval[$1 "/" ncnt[$1]] = $3; if (!($1 in order)) { order[$1] = ++k } }
END {
    fail = 0
    for (i = 1; i <= k; i++) {
        for (name in order) if (order[name] == i) break
        for (s = 1; s <= ncnt[name]; s++) scratch[s] = nval[name "/" s]
        nmed = median(scratch, ncnt[name])
        if (!(name in ocnt)) {
            printf "  new-only   %-55s %14.1f ns/op (no baseline, passes)\n", name, nmed
            continue
        }
        for (s = 1; s <= ocnt[name]; s++) scratch[s] = oval[name "/" s]
        omed = median(scratch, ocnt[name])
        delta = (nmed - omed) / omed
        status = "ok"
        if (delta > maxreg) { status = "REGRESSION"; fail = 1 }
        printf "  %-10s %-55s %14.1f -> %14.1f ns/op  %+7.1f%% (median)\n", status, name, omed, nmed, 100 * delta
    }
    if (k == 0) { print "benchdiff: no benchmark results parsed"; exit 2 }
    if (fail) {
        printf "benchdiff: FAIL — median ns/op regression beyond %.0f%% versus base\n", 100 * maxreg
        exit 1
    }
    printf "benchdiff: PASS — all gated benchmarks within %.0f%% of base\n", 100 * maxreg
}
' "$OUT_DIR/old.txt" "$OUT_DIR/new.txt"
