#!/bin/sh
# Dead-link check over the repository's markdown: every relative link in a
# tracked *.md file must point at a file or directory that exists.
# Scheme-qualified links (http:, https:, mailto:) and pure #anchors are
# skipped; #fragments on relative links are stripped before the check.
# Exits 1 listing every dead link found. Run from the repository root
# (make doc does).
fail=0
for f in $(git ls-files '*.md'); do
	dir=$(dirname "$f")
	for target in $(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' -e 's/#.*$//'); do
		case $target in
		'' | http://* | https://* | mailto:*) continue ;;
		esac
		if [ ! -e "$dir/$target" ]; then
			echo "$f: dead link -> $target" >&2
			fail=1
		fi
	done
done
if [ $fail -eq 0 ]; then
	echo "check-md-links: all relative markdown links resolve"
fi
exit $fail
